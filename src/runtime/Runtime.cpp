//===- Runtime.cpp --------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "analysis/Coalescing.h"
#include "analysis/Commutativity.h"
#include "analysis/Footprint.h"
#include "analysis/PointsTo.h"
#include "codegen/CodeGen.h"
#include "frontend/Compile.h"
#include "support/Env.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <thread>

using namespace concord;
using namespace concord::runtime;

namespace {

/// GPU virtual base of the transient reduction scratch surface.
constexpr uint64_t GpuLocalScratchBase = 0x9000000000ull;
/// Scratch base in the CPU device's address view.
constexpr uint64_t CpuLocalScratchBase = 0xE00000000000ull;

/// Work-group size for reduction kernels (4 warps on the GPU; the local
/// tree depth). Must be a power of two.
constexpr unsigned ReduceGroupSize = 64;

uint64_t optionsFingerprint(const transforms::PipelineOptions &O) {
  uint64_t F = uint64_t(O.Svm);
  F = F * 131 + O.EnableL3Opt;
  F = F * 131 + O.EnableUnroll;
  F = F * 131 + O.CleanupAfterSvm;
  F = F * 131 + O.NumRegisters;
  F = F * 131 + O.UnrollMaxTrip;
  F = F * 131 + O.VerifyEachPass;
  F = F * 131 + O.RunStaticChecks;
  F = F * 131 + O.ReportFootprintHazards;
  F = F * 131 + O.RelaxedFPReduction;
  F = F * 131 + O.EnableSoaLayout;
  return F;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

/// One compiled (spec, construct, device-options) entry - gpu_function_t.
struct Runtime::CachedProgram {
  codegen::KernelProgram Program;
  std::string KernelName;
  transforms::PipelineStats Stats;
  std::string Diagnostics;
  bool Unsupported = false; ///< Must fall back to native CPU execution.
  bool Failed = false;
  double CompileSeconds = 0;
  /// Inferred SVM footprint of the post-pipeline kernel (valid only when
  /// compilation succeeded; entries are immutable once cached).
  analysis::KernelFootprint Footprint;
  /// Accumulate-only proof over the same post-pipeline IR.
  analysis::CommutativityInfo Commut;
  /// The SOA-transformed sibling program (transforms/SoaLayout) and its
  /// staging plan, from a second compile with EnableSoaLayout. Only set
  /// for GPU parallel-for entries whose rewrite found an eligible root;
  /// the base Program above stays the fallback (and the source of every
  /// scheduling analysis, so placement is layout-independent).
  bool HasSoa = false;
  codegen::KernelProgram SoaProgram;
  transforms::SoaKernelPlan SoaPlan;
};

struct Runtime::Impl {
  transforms::PipelineOptions GpuOptions;
  transforms::PipelineOptions CpuOptions;
  gpusim::SimOptions SimOpts;
  ExecMode Mode = ExecMode::SingleDevice;
  HybridOptions Hybrid;
  FootprintPolicy FpPolicy = FootprintPolicy::Trust;

  svm::BindingTable GpuBindings;
  svm::BindingTable CpuBindings;

  /// Guards Programs and VTables. Scheduler workers offload concurrently:
  /// lookups take the lock shared, a cache miss upgrades to exclusive and
  /// re-checks, so each (spec, construct, options) compiles exactly once.
  mutable std::shared_mutex CacheMutex;

  /// gpu_program_t / gpu_function_t caches.
  std::map<uint64_t, std::unique_ptr<Runtime::CachedProgram>> Programs;

  /// Materialized vtables per spec: class name -> per-group CPU addresses
  /// of the u64 arrays living in the shared region.
  std::map<uint64_t, std::map<std::string, std::vector<uint64_t>>> VTables;

  /// Per-kernel history of modelled device throughput, used to steer the
  /// hybrid split ratio (keyed by spec hash).
  struct SplitProfile {
    double GpuItemsPerSec = 0;
    double CpuItemsPerSec = 0;
    uint64_t HybridLaunches = 0;
  };
  mutable std::mutex ProfileMutex;
  std::map<uint64_t, SplitProfile> Profiles;

  /// Footprint-refinement counters (RefinementStats). Compile-time parts
  /// accumulate once per new cache entry; OobFindings per lint call.
  std::atomic<uint64_t> WindowsClipped{0};
  std::atomic<uint64_t> TopDemoted{0};
  std::atomic<uint64_t> OobFindings{0};
  std::atomic<uint64_t> PtsDemoted{0};
  std::atomic<uint64_t> PtsRoots{0};
  std::atomic<uint64_t> AliasLintFindings{0};

  /// Accumulate-protocol counters (compile-time window/rejection counts
  /// once per cache entry; task/merge/shadow counts fed by the scheduler).
  std::atomic<uint64_t> AccumWindows{0};
  std::atomic<uint64_t> AccumRejections{0};
  std::atomic<uint64_t> AccumTasks{0};
  std::atomic<uint64_t> MergeTasks{0};
  std::atomic<uint64_t> ShadowBytes{0};

  /// Data-aware placement counters (resident/fetched fed by the
  /// scheduler's residency accounting; splits counted by offloadHybrid).
  std::atomic<uint64_t> ResidentBytes{0};
  std::atomic<uint64_t> FetchedBytes{0};
  std::atomic<uint64_t> AffinityHits{0};
  std::atomic<uint64_t> FootprintSplits{0};

  /// Coalescing classification (once per compiled GPU parallel-for cache
  /// entry) and SOA staging counters (per launch).
  std::atomic<uint64_t> UniformAccesses{0};
  std::atomic<uint64_t> CoalescedAccesses{0};
  std::atomic<uint64_t> StridedAccesses{0};
  std::atomic<uint64_t> ScatteredAccesses{0};
  std::atomic<uint64_t> SoaRewrites{0};
  std::atomic<uint64_t> SoaLaunches{0};
  std::atomic<uint64_t> SoaFallbacks{0};
  std::atomic<uint64_t> SoaStagedBytes{0};

  /// Profile-guided GPU fraction for a kernel; InitialGpuFraction until
  /// the first hybrid launch has recorded throughput history.
  double fractionFor(uint64_t SpecKey) const {
    std::lock_guard<std::mutex> Lock(ProfileMutex);
    auto It = Profiles.find(SpecKey);
    if (It == Profiles.end() || It->second.HybridLaunches == 0)
      return Hybrid.InitialGpuFraction;
    const SplitProfile &Pr = It->second;
    double Total = Pr.GpuItemsPerSec + Pr.CpuItemsPerSec;
    if (Total <= 0)
      return Hybrid.InitialGpuFraction;
    // Keep both devices in play: a starved device would stop producing
    // fresh throughput samples and the ratio could never recover.
    return std::clamp(Pr.GpuItemsPerSec / Total, 0.05, 0.95);
  }

  void recordHybridSample(uint64_t SpecKey, int64_t GpuItems,
                          int64_t CpuItems, double GpuSeconds,
                          double CpuSeconds) {
    double GpuTp = double(GpuItems) / std::max(GpuSeconds, 1e-12);
    double CpuTp = double(CpuItems) / std::max(CpuSeconds, 1e-12);
    std::lock_guard<std::mutex> Lock(ProfileMutex);
    SplitProfile &Pr = Profiles[SpecKey];
    if (Pr.HybridLaunches == 0) {
      Pr.GpuItemsPerSec = GpuTp;
      Pr.CpuItemsPerSec = CpuTp;
    } else {
      double S = std::clamp(Hybrid.Smoothing, 0.0, 1.0);
      Pr.GpuItemsPerSec = (1 - S) * Pr.GpuItemsPerSec + S * GpuTp;
      Pr.CpuItemsPerSec = (1 - S) * Pr.CpuItemsPerSec + S * CpuTp;
    }
    ++Pr.HybridLaunches;
  }

  Impl(svm::SharedRegion &Region, transforms::PipelineOptions GpuOpts)
      : GpuOptions(GpuOpts),
        GpuBindings(Region),
        CpuBindings("svm-shared-region-cpu-view", Region.cpuBase(),
                    Region.hostFromGpu(Region.gpuBase(), 0),
                    Region.capacity()) {
    // The CPU device executes untranslated kernels against CPU addresses.
    CpuOptions = transforms::PipelineOptions();
    CpuOptions.Svm = transforms::SvmMode::None;
    CpuOptions.EnableL3Opt = false;
  }
};

Runtime::Runtime(const gpusim::MachineConfig &Machine,
                 svm::SharedRegion &Region,
                 transforms::PipelineOptions GpuOptions)
    : Machine(Machine), Region(Region),
      Pool(Machine.Cpu.NumCores),
      P(std::make_unique<Impl>(Region, GpuOptions)) {}

Runtime::~Runtime() = default;

void Runtime::setGpuOptions(const transforms::PipelineOptions &Options) {
  P->GpuOptions = Options;
}

void Runtime::setSimOptions(const gpusim::SimOptions &Options) {
  P->SimOpts = Options;
}

const gpusim::SimOptions &Runtime::simOptions() const { return P->SimOpts; }

size_t Runtime::programCacheSize() const {
  std::shared_lock<std::shared_mutex> Lock(P->CacheMutex);
  return P->Programs.size();
}

static uint64_t specKeyOf(const KernelSpec &Spec) {
  return hashString(Spec.Source) * 31 + hashString(Spec.BodyClass);
}

static uint64_t cacheKeyOf(uint64_t SpecKey, Construct Kind, Device Dev,
                           const transforms::PipelineOptions &Opts) {
  return SpecKey * 1315423911ull + uint64_t(Kind) * 7 + uint64_t(Dev) * 3 +
         optionsFingerprint(Opts);
}

/// Compiles (or returns the cached) program for a spec + construct +
/// device. Also materializes the vtables on first compile of a spec.
/// Thread-safe; \p DidCompile (optional) reports whether this call
/// inserted a new cache entry (i.e. paid the JIT cost). Cached entries
/// are immutable and never evicted, so the returned pointer stays valid
/// and readable without the lock.
static Runtime::CachedProgram *
compileCached(Runtime::Impl &Impl, svm::SharedRegion &Region,
              const KernelSpec &Spec, Construct Kind, Device Dev,
              const transforms::PipelineOptions &Opts,
              uint64_t *SpecKeyOut, bool *DidCompile = nullptr) {
  uint64_t SpecKey = specKeyOf(Spec);
  if (SpecKeyOut)
    *SpecKeyOut = SpecKey;
  if (DidCompile)
    *DidCompile = false;
  uint64_t Key = cacheKeyOf(SpecKey, Kind, Dev, Opts);
  {
    std::shared_lock<std::shared_mutex> Lock(Impl.CacheMutex);
    auto It = Impl.Programs.find(Key);
    if (It != Impl.Programs.end())
      return It->second.get();
  }

  // Compile under the exclusive lock (after re-checking: another worker
  // may have won the race between the two lock acquisitions). Holding the
  // lock across the compile keeps the compile-once guarantee.
  std::unique_lock<std::shared_mutex> Lock(Impl.CacheMutex);
  auto &Programs = Impl.Programs;
  auto &VTables = Impl.VTables;
  auto It = Programs.find(Key);
  if (It != Programs.end())
    return It->second.get();
  if (DidCompile)
    *DidCompile = true;

  auto CP = std::make_unique<Runtime::CachedProgram>();
  auto T0 = std::chrono::steady_clock::now();
  DiagnosticEngine Diags;

  auto Fail = [&](const std::string &Extra) -> Runtime::CachedProgram * {
    CP->Failed = true;
    CP->Diagnostics = Diags.str() + Extra;
    CP->CompileSeconds = secondsSince(T0);
    auto *Raw = CP.get();
    Programs.emplace(Key, std::move(CP));
    return Raw;
  };

  auto M = frontend::compileProgram(Spec.Source, Spec.BodyClass, Diags);
  if (!M)
    return Fail("\n(kernel source failed to compile)");

  cir::Function *Entry =
      Kind == Construct::ParallelFor
          ? frontend::createKernelEntry(*M, Spec.BodyClass, Diags)
          : transforms::createReduceKernel(*M, Spec.BodyClass, Diags);
  if (!Entry)
    return Fail("\n(kernel entry creation failed)");
  CP->KernelName = Entry->name();

  auto FallBack = [&]() -> Runtime::CachedProgram * {
    // Section 2.1: compile-time warning + CPU fallback.
    CP->Unsupported = true;
    CP->Diagnostics = Diags.str();
    CP->CompileSeconds = secondsSince(T0);
    auto *Raw = CP.get();
    Programs.emplace(Key, std::move(CP));
    return Raw;
  };
  if (Diags.hasUnsupportedFeature())
    return FallBack();

  std::string VerifyError;
  if (!transforms::runPipeline(*M, Opts, CP->Stats, &VerifyError, &Diags))
    return Fail("\npipeline verification failed: " + VerifyError);
  // The pipeline's offload-legality check rejects kernels the device
  // cannot execute (residual recursion cycles, un-devirtualized vcalls,
  // oversized private frames): degrade to native CPU execution.
  if (Diags.hasUnsupportedFeature())
    return FallBack();

  codegen::CodeGenResult CG = codegen::compileModule(*M);
  if (!CG.ok())
    return Fail("\ncodegen failed: " + CG.Error);
  // Footprint of the post-pipeline IR: devirtualized, inlined, and
  // SVM-lowered, so every shared access is a visible load/store and the
  // body pointer chain is explicit.
  if (cir::Function *KF = M->findFunction(CP->KernelName)) {
    CP->Footprint = analysis::computeFootprint(*KF);
    Impl.WindowsClipped += CP->Footprint.WindowsClipped;
    Impl.TopDemoted += CP->Footprint.TopDemoted;
    Impl.PtsDemoted += CP->Footprint.PtsDemoted;
    Impl.PtsRoots += CP->Footprint.PtsRoots;
    Impl.AliasLintFindings += analysis::lintPointerAliases(*KF).size();
    CP->Commut =
        analysis::computeCommutativity(*KF, Opts.RelaxedFPReduction);
    Impl.AccumWindows += CP->Commut.Windows.size();
    Impl.AccumRejections += CP->Commut.Rejections.size();
    if (Dev == Device::GPU && Kind == Construct::ParallelFor) {
      analysis::KernelCoalescing KC = analysis::computeCoalescing(*KF);
      Impl.UniformAccesses += KC.UniformCount;
      Impl.CoalescedAccesses += KC.CoalescedCount;
      Impl.StridedAccesses += KC.StridedCount;
      Impl.ScatteredAccesses += KC.ScatteredCount;
    }
  }
  CP->Program = std::move(CG.Program);
  CP->Diagnostics = Diags.str();

  // Coalescing-driven SOA sibling: compile the spec a second time with the
  // AoSoA rewrite enabled. Only kernels whose rewrite produced an active
  // staging plan keep the sibling; everything else (and every analysis
  // consumer — footprint, commutativity, scheduling) continues to see the
  // base program, so the transform cannot perturb placement decisions.
  // CONCORD_TRANSFORM_SOA=0 disables the attempt entirely.
  if (Dev == Device::GPU && Kind == Construct::ParallelFor &&
      !Opts.EnableSoaLayout && support::env::soaTransformEnabled() &&
      CP->Footprint.Analyzed) {
    DiagnosticEngine SDiags;
    auto SM = frontend::compileProgram(Spec.Source, Spec.BodyClass, SDiags);
    if (SM && frontend::createKernelEntry(*SM, Spec.BodyClass, SDiags) &&
        !SDiags.hasUnsupportedFeature()) {
      transforms::PipelineOptions SOpts = Opts;
      SOpts.EnableSoaLayout = true;
      transforms::PipelineStats SStats;
      transforms::SoaModulePlans Plans;
      std::string SErr;
      if (transforms::runPipeline(*SM, SOpts, SStats, &SErr, &SDiags,
                                  &Plans) &&
          !SDiags.hasUnsupportedFeature()) {
        auto PlanIt = Plans.find(CP->KernelName);
        if (PlanIt != Plans.end() && PlanIt->second.active()) {
          codegen::CodeGenResult SCG = codegen::compileModule(*SM);
          if (SCG.ok() && SCG.Program.findKernel(CP->KernelName)) {
            CP->SoaProgram = std::move(SCG.Program);
            CP->SoaPlan = std::move(PlanIt->second);
            CP->HasSoa = true;
            CP->Stats.SoaRewrites = SStats.SoaRewrites;
            Impl.SoaRewrites += SStats.SoaRewrites;
          }
        }
      }
    }
  }
  CP->CompileSeconds = secondsSince(T0);

  // Materialize the vtables in the shared region once per spec.
  if (!VTables.count(SpecKey)) {
    auto &Map = VTables[SpecKey];
    for (const codegen::VTableImage &Img : CP->Program.VTables) {
      std::vector<uint64_t> GroupAddrs;
      for (const codegen::VTableGroupImage &G : Img.Groups) {
        auto *Arr = Region.allocArray<uint64_t>(
            std::max<size_t>(1, G.SlotSymbols.size()));
        for (size_t S = 0; S < G.SlotSymbols.size(); ++S)
          Arr[S] = G.SlotSymbols[S];
        GroupAddrs.push_back(reinterpret_cast<uint64_t>(Arr));
      }
      Map.emplace(Img.ClassName, std::move(GroupAddrs));
    }
  }

  auto *Raw = CP.get();
  Programs.emplace(Key, std::move(CP));
  return Raw;
}

//===--- SOA slab staging (transforms/SoaLayout.h protocol) ---------------===//

namespace {

/// In-flight AoSoA staging of one launch: one column slab per rewritten
/// root plus the body copy whose root slots were patched to the virtual
/// slab bases.
struct SoaStage {
  struct Root {
    const transforms::SoaRootPlan *Plan = nullptr;
    char *Src = nullptr;  ///< AoS array base (original allocation).
    char *Slab = nullptr; ///< Column slab covering the launch's tiles.
    int64_t T0 = 0;       ///< First tile index staged.
  };
  std::vector<Root> Roots;
  char *BodyCopy = nullptr;
  unsigned SimdWidth = 16;
  int64_t Base = 0, Count = 0;
  bool Active = false;
};

void soaRelease(svm::SharedRegion &Region, SoaStage &St) {
  for (SoaStage::Root &R : St.Roots)
    Region.deallocate(R.Slab);
  Region.deallocate(St.BodyCopy);
  St.Roots.clear();
  St.BodyCopy = nullptr;
  St.Active = false;
}

} // namespace

/// Stages the SOA slabs for a launch of items [Base, Base+Count): gathers
/// every planned field column, clones the body object, and patches the
/// clone's root slots to the virtual slab bases (slab - T0*tileBytes, so
/// the kernel's absolute-tile addressing lands in the slab). Returns false
/// — leaving nothing allocated — when a runtime precondition fails: an
/// unresolvable or too-short source allocation, overlapping planned
/// sources, or a footprint access outside the plan overlapping a staged
/// window (it would see stale AoS bytes or miss a staged write). The
/// caller then runs the base program; results are bit-identical either
/// way, staging only changes the modelled access pattern.
static bool soaPrepare(Runtime::Impl &Impl, svm::SharedRegion &Region,
                       const Runtime::CachedProgram *CP, void *BodyPtr,
                       int64_t Base, int64_t Count, SoaStage &St) {
  if (!CP->HasSoa || Count <= 0 || Base < 0 || !CP->Footprint.Analyzed)
    return false;
  const transforms::SoaKernelPlan &Plan = CP->SoaPlan;
  const int64_t W = Plan.SimdWidth;
  if (W <= 0)
    return false;

  svm::MemRange BodyExt = Region.allocationExtent(BodyPtr);
  uint64_t BodyAddr = reinterpret_cast<uint64_t>(BodyPtr);
  if (BodyExt.empty() || BodyAddr < BodyExt.Begin ||
      BodyAddr >= BodyExt.End)
    return false;
  size_t CopyBytes = size_t(BodyExt.End - BodyAddr);

  // Resolve every planned root's source window for this launch and check
  // it stays inside its own live allocation.
  struct SrcWin {
    char *Arr;
    uint64_t Lo, Hi;
  };
  std::vector<SrcWin> Srcs;
  for (const transforms::SoaRootPlan &RP : Plan.Roots) {
    if (RP.BodySlotOff < 0 ||
        uint64_t(RP.BodySlotOff) + sizeof(char *) > CopyBytes)
      return false;
    char *Arr = nullptr;
    std::memcpy(&Arr, static_cast<char *>(BodyPtr) + RP.BodySlotOff,
                sizeof(char *));
    if (!Arr || !Region.contains(Arr))
      return false;
    uint64_t Lo = reinterpret_cast<uint64_t>(Arr) +
                  uint64_t(Base) * uint64_t(RP.Stride);
    uint64_t Hi = reinterpret_cast<uint64_t>(Arr) +
                  uint64_t(Base + Count) * uint64_t(RP.Stride);
    svm::MemRange Ext = Region.allocationExtent(Arr);
    if (Ext.empty() || Lo < Ext.Begin || Hi > Ext.End)
      return false;
    Srcs.push_back({Arr, Lo, Hi});
  }
  // Two slots holding overlapping arrays would stage the same bytes into
  // two slabs and writes could diverge between them.
  for (size_t I = 0; I < Srcs.size(); ++I)
    for (size_t J = I + 1; J < Srcs.size(); ++J)
      if (Srcs[I].Lo < Srcs[J].Hi && Srcs[J].Lo < Srcs[I].Hi)
        return false;

  // Any footprint access *outside* the plan overlapping a staged window
  // aliases bytes the kernel now sees only through the slab. The planned
  // accesses themselves concretize inside the windows by construction
  // (affine, stride S, segment within the element).
  std::vector<analysis::ConcreteAccess> Accesses =
      analysis::concretizeFootprint(
          CP->Footprint, BodyPtr, Base, Count, Region.range(),
          [&Region](const void *Ptr) {
            return Region.allocationExtent(Ptr);
          },
          [&Region](const void *Ptr) { return Region.poolExtent(Ptr); });
  for (const analysis::ConcreteAccess &A : Accesses) {
    bool Planned =
        A.RootKnown && !A.Pool && A.RootPath.size() == 1 &&
        std::any_of(Plan.Roots.begin(), Plan.Roots.end(),
                    [&](const transforms::SoaRootPlan &RP) {
                      return RP.BodySlotOff == A.RootPath[0];
                    });
    if (Planned)
      continue;
    for (const SrcWin &S : Srcs)
      if (A.Range.Begin < S.Hi && S.Lo < A.Range.End)
        return false;
  }

  // Clone the body: the kernel reads the patched slots from the clone
  // while the original object stays untouched for the host (and for any
  // concurrent launch running the base program).
  St.BodyCopy = static_cast<char *>(Region.allocateShadow(CopyBytes, 64));
  if (!St.BodyCopy)
    return false;
  std::memcpy(St.BodyCopy, BodyPtr, CopyBytes);
  St.SimdWidth = unsigned(W);
  St.Base = Base;
  St.Count = Count;

  uint64_t Staged = 0;
  for (size_t R = 0; R < Plan.Roots.size(); ++R) {
    const transforms::SoaRootPlan &RP = Plan.Roots[R];
    const uint64_t Tile = RP.tileBytes(unsigned(W));
    int64_t T0 = Base / W;
    int64_t T1 = (Base + Count - 1) / W;
    char *Slab = static_cast<char *>(
        Region.allocateShadow(size_t(T1 - T0 + 1) * Tile, 64));
    if (!Slab) {
      soaRelease(Region, St);
      return false;
    }
    St.Roots.push_back({&RP, Srcs[R].Arr, Slab, T0});
    for (const transforms::SoaFieldSeg &Seg : RP.Segs) {
      for (int64_t Gid = Base; Gid < Base + Count; ++Gid)
        std::memcpy(Slab + size_t(Gid / W - T0) * Tile +
                        size_t(Seg.Off) * size_t(W) +
                        size_t(Gid % W) * Seg.Bytes,
                    Srcs[R].Arr + size_t(Gid) * size_t(RP.Stride) +
                        Seg.Off,
                    Seg.Bytes);
      Staged += uint64_t(Count) * Seg.Bytes;
    }
    uint64_t Virtual =
        reinterpret_cast<uint64_t>(Slab) - uint64_t(T0) * Tile;
    std::memcpy(St.BodyCopy + RP.BodySlotOff, &Virtual, sizeof(uint64_t));
  }
  Impl.SoaStagedBytes += Staged;
  ++Impl.SoaLaunches;
  St.Active = true;
  return true;
}

/// Scatters written columns back to the AoS arrays (only when the launch
/// succeeded) and releases the slabs and the body copy. No-op when
/// nothing was staged.
static void soaFinish(Runtime::Impl &Impl, svm::SharedRegion &Region,
                      SoaStage &St, bool WriteBack) {
  if (!St.Active)
    return;
  const int64_t W = St.SimdWidth;
  if (WriteBack) {
    uint64_t Staged = 0;
    for (const SoaStage::Root &R : St.Roots) {
      const transforms::SoaRootPlan &RP = *R.Plan;
      const uint64_t Tile = RP.tileBytes(unsigned(W));
      for (const transforms::SoaFieldSeg &Seg : RP.Segs) {
        if (!Seg.Written)
          continue;
        for (int64_t Gid = St.Base; Gid < St.Base + St.Count; ++Gid)
          std::memcpy(R.Src + size_t(Gid) * size_t(RP.Stride) + Seg.Off,
                      R.Slab + size_t(Gid / W - R.T0) * Tile +
                          size_t(Seg.Off) * size_t(W) +
                          size_t(Gid % W) * Seg.Bytes,
                      Seg.Bytes);
        Staged += uint64_t(St.Count) * Seg.Bytes;
      }
    }
    Impl.SoaStagedBytes += Staged;
  }
  soaRelease(Region, St);
}

void Runtime::setExecMode(ExecMode Mode) { P->Mode = Mode; }

ExecMode Runtime::execMode() const { return P->Mode; }

void Runtime::setHybridOptions(const HybridOptions &Options) {
  P->Hybrid = Options;
}

const HybridOptions &Runtime::hybridOptions() const { return P->Hybrid; }

LaunchReport Runtime::offload(const KernelSpec &Spec, int64_t N,
                              void *BodyPtr, bool OnCpu) {
  if (!OnCpu && P->Mode == ExecMode::Hybrid)
    return offloadHybrid(Spec, N, BodyPtr);
  return offloadRange(Spec, 0, N, BodyPtr, OnCpu);
}

LaunchReport Runtime::offloadRange(const KernelSpec &Spec, int64_t Base,
                                   int64_t Count, void *BodyPtr,
                                   bool OnCpu) {
  LaunchReport Rep;
  Rep.Executed = OnCpu ? Device::CPU : Device::GPU;
  const transforms::PipelineOptions &Opts =
      OnCpu ? P->CpuOptions : P->GpuOptions;

  bool DidCompile = false;
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor,
      OnCpu ? Device::CPU : Device::GPU, Opts, nullptr, &DidCompile);
  Rep.JitCached = !DidCompile;
  Rep.CompileSeconds = DidCompile ? CP->CompileSeconds : 0;
  Rep.Diagnostics = CP->Diagnostics;
  Rep.OptStats = CP->Stats;
  if (CP->Failed)
    return Rep;
  if (CP->Unsupported) {
    Rep.FellBack = true;
    Rep.Executed = Device::CPU;
    return Rep;
  }
  if (!Region.contains(BodyPtr)) {
    Rep.Diagnostics += "\nBody object is not in the shared region";
    return Rep;
  }

  const codegen::BKernel *K = CP->Program.findKernel(CP->KernelName);
  assert(K && "compiled program lost its kernel");

  const gpusim::DeviceConfig &Dev = OnCpu ? Machine.Cpu : Machine.Gpu;
  svm::BindingTable &BT = OnCpu ? P->CpuBindings : P->GpuBindings;
  uint64_t SvmConst = OnCpu ? 0 : Region.svmConst();

  // SOA sibling: stage the slabs and run the transformed program against
  // the patched body copy; fall back to the base program when the runtime
  // safety checks reject staging.
  const codegen::BKernel *RunK = K;
  uint64_t BodyAddr = reinterpret_cast<uint64_t>(BodyPtr);
  SoaStage Soa;
  if (!OnCpu && CP->HasSoa && support::env::soaTransformEnabled()) {
    if (soaPrepare(*P, Region, CP, BodyPtr, Base, Count, Soa)) {
      RunK = CP->SoaProgram.findKernel(CP->KernelName);
      BodyAddr = reinterpret_cast<uint64_t>(Soa.BodyCopy);
      Rep.SoaStaged = true;
    } else {
      ++P->SoaFallbacks;
    }
  }

  Region.pin();
  gpusim::Simulator Sim(Dev, BT, SvmConst, P->SimOpts);
  Rep.Sim = Sim.runRange(*RunK, {BodyAddr}, uint64_t(Base),
                         uint64_t(Count));
  Region.unpin();
  soaFinish(*P, Region, Soa, /*WriteBack=*/Rep.Sim.ok());

  Rep.Ok = Rep.Sim.ok();
  if (!Rep.Ok)
    Rep.Diagnostics += "\n" + Rep.Sim.TrapMessage;
  return Rep;
}

/// Merged view of a split launch: the partitions ran concurrently, so the
/// modelled wall time is the slower one; energy and traffic counters are
/// additive across devices.
static gpusim::SimResult mergeSimResults(const gpusim::SimResult &Gpu,
                                         const gpusim::SimResult &Cpu) {
  gpusim::SimResult M;
  M.Trapped = Gpu.Trapped || Cpu.Trapped;
  M.TrapMessage = Gpu.Trapped ? Gpu.TrapMessage : Cpu.TrapMessage;
  M.Cycles = std::max(Gpu.Cycles, Cpu.Cycles);
  M.Seconds = std::max(Gpu.Seconds, Cpu.Seconds);
  M.Joules = Gpu.Joules + Cpu.Joules;
  M.WarpInstructions = Gpu.WarpInstructions + Cpu.WarpInstructions;
  M.LaneOps = Gpu.LaneOps + Cpu.LaneOps;
  M.MemAccesses = Gpu.MemAccesses + Cpu.MemAccesses;
  M.LinesTouched = Gpu.LinesTouched + Cpu.LinesTouched;
  M.CacheHits = Gpu.CacheHits + Cpu.CacheHits;
  M.CacheMisses = Gpu.CacheMisses + Cpu.CacheMisses;
  M.L1Hits = Gpu.L1Hits + Cpu.L1Hits;
  M.ContentionEvents = Gpu.ContentionEvents + Cpu.ContentionEvents;
  M.DivergentBranches = Gpu.DivergentBranches + Cpu.DivergentBranches;
  M.Barriers = Gpu.Barriers + Cpu.Barriers;
  M.LocalAccesses = Gpu.LocalAccesses + Cpu.LocalAccesses;
  return M;
}

/// Concretized working-set bytes of the launch sub-range
/// [Base, Base + Count): the footprint windows evaluated against the body
/// object, merged so overlapping windows count once.
static uint64_t partitionBytes(const analysis::KernelFootprint &FP,
                               const void *BodyPtr, int64_t Base,
                               int64_t Count, svm::SharedRegion &Region) {
  std::vector<analysis::ConcreteAccess> Accesses =
      analysis::concretizeFootprint(
          FP, BodyPtr, Base, Count, Region.range(),
          [&Region](const void *Ptr) {
            return Region.allocationExtent(Ptr);
          },
          [&Region](const void *Ptr) { return Region.poolExtent(Ptr); });
  std::vector<svm::MemRange> Ranges;
  Ranges.reserve(Accesses.size());
  for (const analysis::ConcreteAccess &A : Accesses)
    Ranges.push_back(A.Range);
  std::sort(Ranges.begin(), Ranges.end(),
            [](const svm::MemRange &A, const svm::MemRange &B) {
              return A.Begin < B.Begin;
            });
  uint64_t Total = 0;
  uint64_t End = 0;
  bool Any = false;
  for (const svm::MemRange &R : Ranges) {
    if (R.size() == 0)
      continue;
    if (Any && R.Begin < End) {
      if (R.End > End) {
        Total += R.End - End;
        End = R.End;
      }
    } else {
      Total += R.size();
      End = R.End;
      Any = true;
    }
  }
  return Total;
}

/// Clamps the EWMA boundary into the interval where the GPU partition's
/// working set fits the GPU LLC and the CPU partition's fits the CPU LLC.
/// Returns true when the boundary moved. Requires a precise footprint:
/// Bounded/Top entries have no provable per-partition window, so their
/// concretized whole-allocation ranges would not shrink with the split
/// and the search would be meaningless.
static bool refineSplitByFootprint(const analysis::KernelFootprint &FP,
                                   const void *BodyPtr, int64_t N,
                                   const gpusim::MachineConfig &Machine,
                                   svm::SharedRegion &Region,
                                   int64_t &Split) {
  if (!FP.Analyzed)
    return false;
  for (const analysis::FootprintEntry &E : FP.Entries)
    if (E.Kind != analysis::ExtentKind::None &&
        E.Kind != analysis::ExtentKind::Exact &&
        E.Kind != analysis::ExtentKind::Affine)
      return false;

  const uint64_t GpuCap = Machine.Gpu.LLC.SizeBytes;
  const uint64_t CpuCap = Machine.Cpu.LLC.SizeBytes;
  if (GpuCap == 0 || CpuCap == 0)
    return false;
  auto GpuFits = [&](int64_t S) {
    return partitionBytes(FP, BodyPtr, 0, S, Region) <= GpuCap;
  };
  auto CpuFits = [&](int64_t S) {
    return partitionBytes(FP, BodyPtr, S, N - S, Region) <= CpuCap;
  };
  // Partition bytes grow monotonically with partition size, so each
  // constraint bounds one end of a feasible interval [Lo, Hi].
  if (!GpuFits(1) || !CpuFits(N - 1))
    return false; // Even a one-item partition overflows; no boundary helps.
  int64_t L = 1, H = N - 1;
  while (L < H) { // Largest S whose GPU partition fits.
    int64_t M = L + (H - L + 1) / 2;
    if (GpuFits(M))
      L = M;
    else
      H = M - 1;
  }
  int64_t Hi = L;
  L = 1;
  H = N - 1;
  while (L < H) { // Smallest S whose CPU partition fits.
    int64_t M = L + (H - L) / 2;
    if (CpuFits(M))
      H = M;
    else
      L = M + 1;
  }
  int64_t Lo = L;
  if (Lo > Hi)
    return false; // Both caches cannot hold their share at any boundary.
  int64_t Refined = std::clamp(Split, Lo, Hi);
  if (Refined == Split)
    return false;
  Split = Refined;
  return true;
}

LaunchReport Runtime::offloadHybrid(const KernelSpec &Spec, int64_t N,
                                    void *BodyPtr) {
  // Compile the GPU program and check eligibility. The interference
  // analysis must have proven the kernel schedule-free: distinct
  // work-items then write disjoint bytes, so the two devices can execute
  // disjoint index ranges against the same shared memory and the result
  // is bit-identical to a single-device launch.
  uint64_t SpecKey = 0;
  bool GpuCompiled = false;
  CachedProgram *GpuCP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      &SpecKey, &GpuCompiled);
  const codegen::BKernel *GK = nullptr;
  if (!GpuCP->Failed && !GpuCP->Unsupported)
    GK = GpuCP->Program.findKernel(GpuCP->KernelName);

  bool Eligible = GK && GK->ScheduleFree && N >= P->Hybrid.MinItems &&
                  N >= 2 && Region.contains(BodyPtr) &&
                  GK->FrameBytes <= Machine.Cpu.PrivateBytesPerItem;
  if (!Eligible) {
    LaunchReport Rep = offloadRange(Spec, 0, N, BodyPtr, /*OnCpu=*/false);
    Rep.JitCached = Rep.JitCached && !GpuCompiled;
    return Rep;
  }

  double Frac = P->fractionFor(SpecKey);
  int64_t Split =
      std::clamp<int64_t>(llround(double(N) * Frac), 1, N - 1);
  bool Refined = false;
  if (P->Hybrid.FootprintGuided) {
    Refined = refineSplitByFootprint(GpuCP->Footprint, BodyPtr, N, Machine,
                                     Region, Split);
    if (Refined)
      ++P->FootprintSplits;
  }

  LaunchReport Rep;
  Rep.Executed = Device::GPU;
  Rep.Hybrid = true;
  Rep.HybridSplit = Split;
  Rep.HybridGpuFraction = Frac;
  Rep.FootprintSplit = Refined;
  Rep.JitCached = !GpuCompiled;
  Rep.CompileSeconds = GpuCompiled ? GpuCP->CompileSeconds : 0;
  Rep.Diagnostics = GpuCP->Diagnostics;
  Rep.OptStats = GpuCP->Stats;

  // Both partitions execute the *same* compiled GPU program against the
  // same binding table, so every work-item runs an identical instruction
  // stream no matter which device model hosts it; only the timing/energy
  // model differs. The NumCores op is pinned to the GPU's core count so
  // id-dependent codegen (the L3 stagger rotation) also matches. SOA
  // staging covers the full range [0, N) once; both partitions then
  // address disjoint columns of the same slab (the base kernel is
  // schedule-free, and the column mapping is a bijection per item).
  const codegen::BKernel *RunK = GK;
  uint64_t BodyAddr = reinterpret_cast<uint64_t>(BodyPtr);
  SoaStage Soa;
  if (GpuCP->HasSoa && support::env::soaTransformEnabled()) {
    if (soaPrepare(*P, Region, GpuCP, BodyPtr, 0, N, Soa)) {
      RunK = GpuCP->SoaProgram.findKernel(GpuCP->KernelName);
      BodyAddr = reinterpret_cast<uint64_t>(Soa.BodyCopy);
      Rep.SoaStaged = true;
    } else {
      ++P->SoaFallbacks;
    }
  }

  gpusim::SimOptions CpuOpts = P->SimOpts;
  CpuOpts.NumCoresValue = Machine.Gpu.NumCores;

  Region.pin();
  gpusim::SimResult CpuR;
  std::thread CpuThread([&] {
    gpusim::Simulator Sim(Machine.Cpu, P->GpuBindings, Region.svmConst(),
                          CpuOpts);
    CpuR = Sim.runRange(*RunK, {BodyAddr}, uint64_t(Split),
                        uint64_t(N - Split));
  });
  gpusim::Simulator GpuSim(Machine.Gpu, P->GpuBindings, Region.svmConst(),
                           P->SimOpts);
  gpusim::SimResult GpuR =
      GpuSim.runRange(*RunK, {BodyAddr}, 0, uint64_t(Split));
  CpuThread.join();
  Region.unpin();

  Rep.HybridGpuSim = GpuR;
  Rep.HybridCpuSim = CpuR;
  Rep.Sim = mergeSimResults(GpuR, CpuR);
  soaFinish(*P, Region, Soa, /*WriteBack=*/Rep.Sim.ok());
  Rep.Ok = Rep.Sim.ok();
  if (!Rep.Ok)
    Rep.Diagnostics += "\n" + Rep.Sim.TrapMessage;
  else
    P->recordHybridSample(SpecKey, Split, N - Split, GpuR.Seconds,
                          CpuR.Seconds);
  return Rep;
}

LaunchReport Runtime::offloadPlaced(const KernelSpec &Spec, int64_t N,
                                    void *BodyPtr, Device Placed) {
  if (Placed == Device::GPU)
    return offloadRange(Spec, 0, N, BodyPtr, /*OnCpu=*/false);

  // CPU placement = the hybrid CPU partition over the full range: the
  // GPU-compiled program on the CPU timing model, GPU bindings and SVM
  // translation, NumCores pinned — identical instruction stream per
  // work-item, so the result is bit-identical to a pure-GPU launch.
  bool GpuCompiled = false;
  CachedProgram *GpuCP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr, &GpuCompiled);
  const codegen::BKernel *GK = nullptr;
  if (!GpuCP->Failed && !GpuCP->Unsupported)
    GK = GpuCP->Program.findKernel(GpuCP->KernelName);
  bool Eligible = GK && GK->ScheduleFree && N >= 1 &&
                  Region.contains(BodyPtr) &&
                  GK->FrameBytes <= Machine.Cpu.PrivateBytesPerItem;
  if (!Eligible) {
    // The scheduler only places eligible tasks; this is the safety net.
    LaunchReport Rep = offloadRange(Spec, 0, N, BodyPtr, /*OnCpu=*/false);
    Rep.JitCached = Rep.JitCached && !GpuCompiled;
    return Rep;
  }

  LaunchReport Rep;
  Rep.Executed = Device::CPU;
  Rep.JitCached = !GpuCompiled;
  Rep.CompileSeconds = GpuCompiled ? GpuCP->CompileSeconds : 0;
  Rep.Diagnostics = GpuCP->Diagnostics;
  Rep.OptStats = GpuCP->Stats;

  // CPU placement still runs the GPU program, so the SOA sibling (when
  // staged) keeps the launch bit-identical with the GPU leg's layout.
  const codegen::BKernel *RunK = GK;
  uint64_t BodyAddr = reinterpret_cast<uint64_t>(BodyPtr);
  SoaStage Soa;
  if (GpuCP->HasSoa && support::env::soaTransformEnabled()) {
    if (soaPrepare(*P, Region, GpuCP, BodyPtr, 0, N, Soa)) {
      RunK = GpuCP->SoaProgram.findKernel(GpuCP->KernelName);
      BodyAddr = reinterpret_cast<uint64_t>(Soa.BodyCopy);
      Rep.SoaStaged = true;
    } else {
      ++P->SoaFallbacks;
    }
  }

  gpusim::SimOptions CpuOpts = P->SimOpts;
  CpuOpts.NumCoresValue = Machine.Gpu.NumCores;
  Region.pin();
  gpusim::Simulator Sim(Machine.Cpu, P->GpuBindings, Region.svmConst(),
                        CpuOpts);
  Rep.Sim = Sim.runRange(*RunK, {BodyAddr}, 0, uint64_t(N));
  Region.unpin();
  soaFinish(*P, Region, Soa, /*WriteBack=*/Rep.Sim.ok());
  Rep.Ok = Rep.Sim.ok();
  if (!Rep.Ok)
    Rep.Diagnostics += "\n" + Rep.Sim.TrapMessage;
  return Rep;
}

bool Runtime::cachedKernelInfo(
    const KernelSpec &Spec, bool *ScheduleFree,
    const analysis::KernelFootprint **Footprint) const {
  uint64_t Key = cacheKeyOf(specKeyOf(Spec), Construct::ParallelFor,
                            Device::GPU, P->GpuOptions);
  std::shared_lock<std::shared_mutex> Lock(P->CacheMutex);
  auto It = P->Programs.find(Key);
  if (It == P->Programs.end())
    return false;
  const CachedProgram *CP = It->second.get();
  if (CP->Failed || CP->Unsupported)
    return false;
  if (ScheduleFree) {
    const codegen::BKernel *K = CP->Program.findKernel(CP->KernelName);
    *ScheduleFree = K && K->ScheduleFree &&
                    K->FrameBytes <= Machine.Cpu.PrivateBytesPerItem;
  }
  if (Footprint)
    *Footprint = &CP->Footprint;
  return true;
}

void Runtime::setFootprintPolicy(FootprintPolicy Policy) {
  P->FpPolicy = Policy;
}

FootprintPolicy Runtime::footprintPolicy() const { return P->FpPolicy; }

const analysis::KernelFootprint *
Runtime::kernelFootprint(const KernelSpec &Spec) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  if (CP->Failed || CP->Unsupported)
    return nullptr;
  return &CP->Footprint;
}

std::vector<analysis::OobFinding>
Runtime::lintLaunchBounds(const KernelSpec &Spec, const void *BodyPtr,
                          int64_t Base, int64_t Count) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  if (CP->Failed || CP->Unsupported)
    return {};
  std::vector<analysis::OobFinding> Findings = analysis::lintFootprintBounds(
      CP->Footprint, CP->KernelName, BodyPtr, Base, Count, Region.range(),
      [this](const void *Ptr) { return Region.allocationExtent(Ptr); });
  P->OobFindings += Findings.size();
  return Findings;
}

const analysis::CommutativityInfo *
Runtime::kernelCommutativity(const KernelSpec &Spec) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  if (CP->Failed || CP->Unsupported)
    return nullptr;
  return &CP->Commut;
}

RefinementStats Runtime::refinementStats() const {
  RefinementStats S;
  S.WindowsClipped = P->WindowsClipped.load();
  S.TopDemoted = P->TopDemoted.load();
  S.OobFindings = P->OobFindings.load();
  S.PtsDemoted = P->PtsDemoted.load();
  S.PtsRoots = P->PtsRoots.load();
  S.AliasLintFindings = P->AliasLintFindings.load();
  S.AccumWindows = P->AccumWindows.load();
  S.AccumRejections = P->AccumRejections.load();
  S.AccumTasks = P->AccumTasks.load();
  S.MergeTasks = P->MergeTasks.load();
  S.ShadowBytes = P->ShadowBytes.load();
  S.ResidentBytes = P->ResidentBytes.load();
  S.FetchedBytes = P->FetchedBytes.load();
  S.AffinityHits = P->AffinityHits.load();
  S.FootprintSplits = P->FootprintSplits.load();
  S.UniformAccesses = P->UniformAccesses.load();
  S.CoalescedAccesses = P->CoalescedAccesses.load();
  S.StridedAccesses = P->StridedAccesses.load();
  S.ScatteredAccesses = P->ScatteredAccesses.load();
  S.SoaRewrites = P->SoaRewrites.load();
  S.SoaLaunches = P->SoaLaunches.load();
  S.SoaFallbacks = P->SoaFallbacks.load();
  S.SoaStagedBytes = P->SoaStagedBytes.load();
  return S;
}

void Runtime::noteAccumTask() { ++P->AccumTasks; }
void Runtime::noteMergeTask() { ++P->MergeTasks; }
void Runtime::noteShadowBytes(uint64_t Bytes) { P->ShadowBytes += Bytes; }

void Runtime::notePlacement(uint64_t ResidentBytes, uint64_t FetchedBytes) {
  P->ResidentBytes += ResidentBytes;
  P->FetchedBytes += FetchedBytes;
}

void Runtime::noteAffinityHit() { ++P->AffinityHits; }

void *Runtime::sharedAlloc(size_t Bytes, size_t Align) {
  // The region allocator is thread-safe (per-region locks in the object
  // store, its own mutex in legacy mode), so this no longer borrows the
  // JIT cache's exclusive lock.
  return Region.allocate(Bytes, Align);
}

void Runtime::sharedFree(void *Ptr) { Region.deallocate(Ptr); }

void *Runtime::shadowAlloc(size_t Bytes, size_t Align) {
  return Region.allocateShadow(Bytes, Align);
}

bool Runtime::kernelScheduleFree(const KernelSpec &Spec) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  if (CP->Failed || CP->Unsupported)
    return false;
  const codegen::BKernel *K = CP->Program.findKernel(CP->KernelName);
  return K && K->ScheduleFree;
}

double Runtime::hybridGpuFraction(const KernelSpec &Spec) const {
  return P->fractionFor(specKeyOf(Spec));
}

LaunchReport Runtime::offloadReduce(const KernelSpec &Spec, int64_t N,
                                    void *BodyPtr, size_t BodyBytes,
                                    const HostJoinFn &Join, bool OnCpu) {
  LaunchReport Rep;
  Rep.Executed = OnCpu ? Device::CPU : Device::GPU;
  const transforms::PipelineOptions &Opts =
      OnCpu ? P->CpuOptions : P->GpuOptions;

  bool DidCompile = false;
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelReduce,
      OnCpu ? Device::CPU : Device::GPU, Opts, nullptr, &DidCompile);
  Rep.JitCached = !DidCompile;
  Rep.CompileSeconds = DidCompile ? CP->CompileSeconds : 0;
  Rep.Diagnostics = CP->Diagnostics;
  Rep.OptStats = CP->Stats;
  if (CP->Failed)
    return Rep;
  if (CP->Unsupported) {
    Rep.FellBack = true;
    Rep.Executed = Device::CPU;
    return Rep;
  }

  const codegen::BKernel *K = CP->Program.findKernel(CP->KernelName);
  assert(K && "compiled program lost its kernel");

  const gpusim::DeviceConfig &Dev = OnCpu ? Machine.Cpu : Machine.Gpu;
  svm::BindingTable &BT = OnCpu ? P->CpuBindings : P->GpuBindings;
  uint64_t SvmConst = OnCpu ? 0 : Region.svmConst();

  // Scratch surface: one Body slot per (rounded-up) work-item. Falls back
  // to sequential CPU reduction when local scratch would be unreasonable
  // (the paper's "if local memory is insufficient" case).
  uint64_t Items = (uint64_t(N) + ReduceGroupSize - 1) / ReduceGroupSize *
                   ReduceGroupSize;
  size_t ScratchBytes = size_t(Items) * BodyBytes;
  if (ScratchBytes > (256u << 20)) {
    Rep.FellBack = true;
    Rep.Executed = Device::CPU;
    Rep.Diagnostics += "\nreduction scratch exceeds limit; CPU fallback";
    return Rep;
  }
  std::vector<char> Scratch(ScratchBytes);
  uint64_t ScratchBase = OnCpu ? CpuLocalScratchBase : GpuLocalScratchBase;
  BT.bindSurface("reduce-scratch", svm::SurfaceKind::LocalScratch,
                 ScratchBase, Scratch.data(), Scratch.size());
  // The kernel receives the scratch pointer in the CPU representation so
  // its SVM translation lands inside the scratch surface.
  uint64_t ScratchCpuRepr = ScratchBase - SvmConst;

  Region.pin();
  gpusim::Simulator Sim(Dev, BT, SvmConst, P->SimOpts);
  uint64_t BodyAddr = reinterpret_cast<uint64_t>(BodyPtr);
  Rep.Sim = Sim.run(*K, {BodyAddr, ScratchCpuRepr, uint64_t(N)},
                    Items, ReduceGroupSize);
  Region.unpin();
  BT.resetTransientSurfaces();

  Rep.Ok = Rep.Sim.ok();
  if (!Rep.Ok) {
    Rep.Diagnostics += "\n" + Rep.Sim.TrapMessage;
    return Rep;
  }

  // Host-side sequential join of the per-group partials (each group's
  // result sits at its slot 0).
  uint64_t NumGroups = Items / ReduceGroupSize;
  std::memcpy(BodyPtr, Scratch.data(), BodyBytes); // Group 0 partial.
  for (uint64_t G = 1; G < NumGroups; ++G)
    Join(BodyPtr, Scratch.data() + size_t(G) * ReduceGroupSize * BodyBytes);
  return Rep;
}

bool Runtime::installVPtrs(const KernelSpec &Spec, void *Obj,
                           const std::string &ClassName) {
  uint64_t SpecKey = 0;
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      &SpecKey);
  if (CP->Failed || CP->Unsupported)
    return false;
  std::shared_lock<std::shared_mutex> Lock(P->CacheMutex);
  auto SpecIt = P->VTables.find(SpecKey);
  if (SpecIt == P->VTables.end())
    return false;
  auto ClassIt = SpecIt->second.find(ClassName);
  if (ClassIt == SpecIt->second.end())
    return false;
  // Group offsets come from the program's vtable image.
  const codegen::VTableImage *Img = nullptr;
  for (const codegen::VTableImage &I : CP->Program.VTables)
    if (I.ClassName == ClassName)
      Img = &I;
  if (!Img || Img->Groups.size() != ClassIt->second.size())
    return false;
  for (size_t G = 0; G < Img->Groups.size(); ++G) {
    uint64_t VtAddr = ClassIt->second[G];
    std::memcpy(static_cast<char *>(Obj) + Img->Groups[G].ObjectOffset,
                &VtAddr, sizeof(uint64_t));
  }
  return true;
}

bool Runtime::staticStats(const KernelSpec &Spec, codegen::OpMixStats *Out,
                          std::string *Error) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  if (CP->Failed || CP->Unsupported) {
    if (Error)
      *Error = CP->Diagnostics;
    return false;
  }
  const codegen::BKernel *K = CP->Program.findKernel(CP->KernelName);
  *Out = K->StaticStats;
  return true;
}

std::string Runtime::diagnosticsFor(const KernelSpec &Spec) {
  CachedProgram *CP = compileCached(
      *P, Region, Spec, Construct::ParallelFor, Device::GPU, P->GpuOptions,
      nullptr);
  return CP->Diagnostics;
}
