//===- Runtime.h - The Concord compute runtime ------------------*- C++ -*-===//
///
/// \file
/// The runtime behind parallel_for_hetero / parallel_reduce_hetero
/// (paper section 3.4):
///
///  * compiles kernel source on first use and caches the result, mirroring
///    gpu_program_t (per-program) and gpu_function_t (per-kernel) caches;
///  * maintains the SVM region's binding tables for the GPU and CPU device
///    models and pins the region across launches (section 2.3);
///  * materializes vtables and the global-symbol values in the shared
///    region and installs object vptrs (section 3.2);
///  * runs kernels under the machine's GPU or CPU timing model, or reports
///    that the kernel must fall back to native CPU execution because it
///    uses features outside Concord's GPU subset (section 2.1);
///  * implements the reduction protocol of section 3.3: device-side
///    work-group trees into a scratch surface, sequential host join of the
///    per-group partials.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_RUNTIME_RUNTIME_H
#define CONCORD_RUNTIME_RUNTIME_H

#include "codegen/Bytecode.h"
#include "gpusim/MachineConfig.h"
#include "gpusim/Simulator.h"
#include "runtime/ThreadPool.h"
#include "svm/BindingTable.h"
#include "svm/SharedRegion.h"
#include "transforms/Passes.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace concord {
namespace analysis {
struct KernelFootprint;
struct CommutativityInfo;
}
namespace runtime {

enum class Device { CPU, GPU };
enum class Construct { ParallelFor, ParallelReduce };

/// How the scheduler treats submitted AccessSet declarations, checked
/// against the statically inferred kernel footprint (analysis/Footprint).
enum class FootprintPolicy {
  Trust,  ///< Legacy: declarations are taken at face value.
  Verify, ///< Reject submissions whose declaration misses inferred bytes.
  Infer,  ///< Ignore declarations; use the inferred footprint.
};

/// How offload() maps a parallel_for onto the machine's devices.
enum class ExecMode {
  SingleDevice, ///< Legacy behaviour: the whole range on one device.
  Hybrid        ///< Split schedule-free kernels across GPU + CPU models.
};

/// Policy knobs for hybrid CPU/GPU partitioning.
struct HybridOptions {
  /// Ranges smaller than this always run on a single device (a split
  /// would be dominated by the second launch's overhead).
  int64_t MinItems = 64;
  /// GPU share of the index space before any profile history exists.
  double InitialGpuFraction = 0.75;
  /// EWMA weight of the newest throughput sample when adapting the split
  /// ratio from per-kernel history (1 = use only the latest launch).
  double Smoothing = 0.5;
  /// Footprint-guided boundary refinement: when the kernel's concretized
  /// footprint is precise (every entry Exact or Affine), the EWMA boundary
  /// is clamped into the feasible interval where each partition's working
  /// set fits its device's modelled LLC. Falls back to the plain EWMA
  /// ratio when the footprint has Bounded/Top entries (no provable
  /// per-partition byte window) or when no boundary satisfies both cache
  /// models.
  bool FootprintGuided = true;
};

/// A kernel handle: CKL source plus the Body class to compile.
struct KernelSpec {
  std::string Source;
  std::string BodyClass;
};

struct LaunchReport {
  Device Executed = Device::CPU;
  bool FellBack = false; ///< Unsupported on GPU; caller must run natively.
  bool Ok = false;
  std::string Diagnostics;
  gpusim::SimResult Sim;
  double CompileSeconds = 0; ///< Nonzero only on the JIT-compiling launch.
  bool JitCached = false;
  transforms::PipelineStats OptStats;
  /// The launch ran the SOA-transformed program against a staged AoSoA
  /// slab (see transforms/SoaLayout.h); results are bit-identical to the
  /// untransformed program, with fewer modelled L3 transactions.
  bool SoaStaged = false;

  /// Hybrid partitioning detail. When Hybrid is set, Sim holds the merged
  /// view (Seconds/Cycles = slower partition, energy and counters summed)
  /// and the per-device partitions are preserved below.
  bool Hybrid = false;
  int64_t HybridSplit = 0;      ///< Items [0, Split) ran on the GPU model.
  double HybridGpuFraction = 0; ///< Fraction used for this launch.
  /// The footprint-guided refinement moved the boundary off the EWMA
  /// ratio so both partitions' working sets fit their cache models.
  bool FootprintSplit = false;
  gpusim::SimResult HybridGpuSim;
  gpusim::SimResult HybridCpuSim;
};

/// Host-side sequential join callback for reductions.
using HostJoinFn = std::function<void(void *Into, void *From)>;

/// Aggregate counters from the flow-sensitive footprint refinement,
/// summed over every kernel this runtime JIT-compiled (each cache entry
/// counted once) plus the out-of-bounds findings reported through
/// lintLaunchBounds. Surfaced in the bench/sched_pipeline JSON.
struct RefinementStats {
  uint64_t WindowsClipped = 0; ///< Windows narrowed by a guard clamp.
  uint64_t TopDemoted = 0;     ///< Data-dependent entries kept root-bounded.
  uint64_t OobFindings = 0;    ///< lintLaunchBounds findings reported.
  uint64_t PtsDemoted = 0;     ///< Pointer-chasing accesses the points-to
                               ///< analysis confined to named roots.
  uint64_t PtsRoots = 0;       ///< Multi-root Bounded entries produced.
  uint64_t AliasLintFindings = 0; ///< Pointer alias lint findings.
  uint64_t AccumWindows = 0;   ///< Proven accumulate windows (per kernel).
  uint64_t AccumRejections = 0; ///< Commutativity prover rejections.
  uint64_t AccumTasks = 0;     ///< Accumulate tasks admitted concurrently.
  uint64_t MergeTasks = 0;     ///< Shadow-fold merge tasks injected.
  uint64_t ShadowBytes = 0;    ///< Total shadow-range bytes allocated.
  uint64_t ResidentBytes = 0;  ///< Launch footprint bytes already resident
                               ///< on the executing device's LLC model
                               ///< when the launch retired (scheduler-fed).
  uint64_t FetchedBytes = 0;   ///< Footprint bytes the executing device
                               ///< had to stream in (footprint − resident).
  uint64_t AffinityHits = 0;   ///< Data-aware placements steered to a
                               ///< device already holding footprint bytes.
  uint64_t FootprintSplits = 0; ///< Hybrid boundaries moved off the EWMA
                                ///< ratio by the footprint-guided split.
  /// Warp-level coalescing classification of every compiled GPU
  /// parallel-for kernel (analysis/Coalescing; one count per static
  /// access, each cache entry counted once).
  uint64_t UniformAccesses = 0;   ///< Warp-invariant addresses.
  uint64_t CoalescedAccesses = 0; ///< Lanes touch adjacent bytes.
  uint64_t StridedAccesses = 0;   ///< AoS field walks (lint candidates).
  uint64_t ScatteredAccesses = 0; ///< Non-affine (pointer chases).
  /// SOA layout transform (transforms/SoaLayout + the staging protocol).
  uint64_t SoaRewrites = 0;    ///< Accesses rewritten to AoSoA columns.
  uint64_t SoaLaunches = 0;    ///< Launches run against a staged slab.
  uint64_t SoaFallbacks = 0;   ///< Launches where the runtime safety
                               ///< checks rejected staging (base program
                               ///< ran instead; still bit-identical).
  uint64_t SoaStagedBytes = 0; ///< Column bytes gathered + scattered.
};

class Runtime {
public:
  // Implementation types, public so the compile cache helpers in
  // Runtime.cpp can name them.
  struct CachedProgram;
  struct Impl;

  Runtime(const gpusim::MachineConfig &Machine, svm::SharedRegion &Region,
          transforms::PipelineOptions GpuOptions =
              transforms::PipelineOptions::gpuAll());
  ~Runtime();

  svm::SharedRegion &region() { return Region; }
  const gpusim::MachineConfig &machine() const { return Machine; }
  ThreadPool &pool() { return Pool; }

  /// Changes the GPU optimization configuration (flushes the GPU side of
  /// the program cache). Used by the benchmark harnesses to sweep the
  /// paper's GPU / +PTROPT / +L3OPT / +ALL configurations.
  void setGpuOptions(const transforms::PipelineOptions &Options);

  /// Changes the simulator execution options for subsequent launches
  /// (host-side only: parallel core simulation, scalar fast paths). Does
  /// not affect modelled timing or energy.
  void setSimOptions(const gpusim::SimOptions &Options);
  const gpusim::SimOptions &simOptions() const;

  /// Selects single-device or hybrid execution for subsequent offload()
  /// calls. Hybrid mode splits schedule-free kernels across the GPU and
  /// CPU machine models (see offloadHybrid); kernels the interference
  /// analysis cannot prove schedule-free keep single-device behaviour.
  void setExecMode(ExecMode Mode);
  ExecMode execMode() const;

  void setHybridOptions(const HybridOptions &Options);
  const HybridOptions &hybridOptions() const;

  /// Selects how sched::Scheduler treats AccessSet declarations for
  /// subsequent submissions (trust / verify / infer). Defaults to Trust.
  void setFootprintPolicy(FootprintPolicy Policy);
  FootprintPolicy footprintPolicy() const;

  /// The statically inferred SVM footprint of the compiled GPU kernel
  /// (compiles on demand). Null for kernels that failed to compile or fell
  /// back to native CPU execution. The pointer stays valid for the
  /// runtime's lifetime: cache entries are immutable and never evicted.
  const analysis::KernelFootprint *kernelFootprint(const KernelSpec &Spec);

  /// Static out-of-bounds lint for a concrete launch: checks the compiled
  /// kernel's provable footprint windows (guard clamps applied) against
  /// their root allocations' extents for items [Base, Base+Count) with the
  /// body object at \p BodyPtr. Compiles on demand; failed or unsupported
  /// kernels produce no findings. The scheduler's Verify policy rejects
  /// submissions with findings before they enter the task graph.
  std::vector<analysis::OobFinding>
  lintLaunchBounds(const KernelSpec &Spec, const void *BodyPtr,
                   int64_t Base, int64_t Count);

  /// The commutativity analysis of the compiled GPU kernel (computed once
  /// at compile time alongside the footprint). Null under the same
  /// conditions as kernelFootprint; same lifetime guarantee.
  const analysis::CommutativityInfo *
  kernelCommutativity(const KernelSpec &Spec);

  /// Aggregate footprint-refinement counters (see RefinementStats).
  RefinementStats refinementStats() const;

  /// Accumulate-protocol counters, fed by the scheduler (see
  /// RefinementStats::AccumTasks/MergeTasks/ShadowBytes).
  void noteAccumTask();
  void noteMergeTask();
  void noteShadowBytes(uint64_t Bytes);

  /// Placement counters, fed by the scheduler's residency accounting when
  /// a launch retires (see RefinementStats::ResidentBytes/FetchedBytes/
  /// AffinityHits).
  void notePlacement(uint64_t ResidentBytes, uint64_t FetchedBytes);
  void noteAffinityHit();

  /// Non-compiling peek at the GPU program cache: returns true iff the
  /// kernel's GPU program is already cached and usable (not failed, not
  /// unsupported), reporting its schedule-freedom and footprint. Never
  /// triggers a JIT compile, so the scheduler can consult it on the
  /// submit path without regressing the lazy-compile contract that
  /// SchedJit.ConcurrentTasksCompileOnce pins down.
  bool cachedKernelInfo(const KernelSpec &Spec, bool *ScheduleFree,
                        const analysis::KernelFootprint **Footprint) const;

  /// Thread-safe allocation in the shared region. The region's object
  /// store takes its own per-region locks, so these no longer serialize
  /// against the JIT cache mutex — concurrent workers allocate from
  /// different regions without contention.
  void *sharedAlloc(size_t Bytes, size_t Align = 16);
  void sharedFree(void *Ptr);

  /// Allocation from the store's dedicated Shadow region class — the
  /// scheduler's accumulate shadow ranges and body copies live here so
  /// their churn never fragments the default heap regions. Equivalent to
  /// sharedAlloc in legacy-arena mode; freed with sharedFree.
  void *shadowAlloc(size_t Bytes, size_t Align = 16);

  /// parallel_for_hetero backend. \p BodyPtr must point into the shared
  /// region. When \p OnCpu, the CPU machine model executes the kernel.
  /// Thread-safe: the scheduler issues concurrent offloads from worker
  /// threads (the JIT cache is guarded; concurrent launches must write
  /// disjoint shared-memory ranges, which the scheduler's hazard tracking
  /// guarantees for declared access sets).
  LaunchReport offload(const KernelSpec &Spec, int64_t N, void *BodyPtr,
                       bool OnCpu);

  /// Runs the item sub-range [Base, Base + Count) of a parallel_for on one
  /// device model (global ids start at Base). Building block for hybrid
  /// partitioning; never splits, regardless of the execution mode.
  LaunchReport offloadRange(const KernelSpec &Spec, int64_t Base,
                            int64_t Count, void *BodyPtr, bool OnCpu);

  /// Splits [0, N) at a profile-guided boundary and runs the low part on
  /// the GPU model and the high part on the CPU model concurrently,
  /// merging the reports. Requires a schedule-free kernel (disjoint
  /// per-item writes make the split safe); otherwise, or when N is below
  /// HybridOptions::MinItems or either compile fails, the whole range runs
  /// on the GPU model as usual. Each hybrid launch updates the per-kernel
  /// throughput history that steers the next split.
  LaunchReport offloadHybrid(const KernelSpec &Spec, int64_t N,
                             void *BodyPtr);

  /// Data-aware whole-device placement: runs the entire range [0, N) on
  /// \p Placed without splitting. GPU placement is a plain GPU launch.
  /// CPU placement executes the *GPU-compiled* program on the CPU machine
  /// model with GPU bindings and the NumCores op pinned to the GPU's core
  /// count — exactly the hybrid CPU partition over the full range — so
  /// every work-item runs the identical instruction stream and the result
  /// stays bit-identical to a pure-GPU launch. Requires a schedule-free
  /// kernel like offloadHybrid; ineligible kernels run on the GPU model.
  LaunchReport offloadPlaced(const KernelSpec &Spec, int64_t N,
                             void *BodyPtr, Device Placed);

  /// True when the compiled GPU kernel was proven schedule-free by the
  /// interference analysis (the precondition for hybrid splitting).
  /// Compiles on demand; returns false for failed or unsupported kernels.
  bool kernelScheduleFree(const KernelSpec &Spec);

  /// Current profile-guided GPU fraction for a kernel (InitialGpuFraction
  /// until the first hybrid launch records history).
  double hybridGpuFraction(const KernelSpec &Spec) const;

  /// parallel_reduce_hetero backend: device-side group trees + host join
  /// of per-group partials into *BodyPtr.
  LaunchReport offloadReduce(const KernelSpec &Spec, int64_t N,
                             void *BodyPtr, size_t BodyBytes,
                             const HostJoinFn &Join, bool OnCpu);

  /// Writes the shared-region vtable pointers for \p ClassName into the
  /// object at \p Obj (all vtable groups, including secondary bases). The
  /// kernel for \p Spec must have been compiled (any offload does this);
  /// compile happens on demand otherwise.
  bool installVPtrs(const KernelSpec &Spec, void *Obj,
                    const std::string &ClassName);

  /// Static op-mix statistics of the compiled kernel (Figure 6).
  bool staticStats(const KernelSpec &Spec, codegen::OpMixStats *Out,
                   std::string *Error = nullptr);

  /// Compilation diagnostics for a spec (forces compilation).
  std::string diagnosticsFor(const KernelSpec &Spec);

  /// Number of distinct programs compiled so far (JIT cache size).
  size_t programCacheSize() const;

private:
  const gpusim::MachineConfig &Machine;
  svm::SharedRegion &Region;
  ThreadPool Pool;
  std::unique_ptr<Impl> P;
};

} // namespace runtime
} // namespace concord

#endif // CONCORD_RUNTIME_RUNTIME_H
