//===- Runtime.h - The Concord compute runtime ------------------*- C++ -*-===//
///
/// \file
/// The runtime behind parallel_for_hetero / parallel_reduce_hetero
/// (paper section 3.4):
///
///  * compiles kernel source on first use and caches the result, mirroring
///    gpu_program_t (per-program) and gpu_function_t (per-kernel) caches;
///  * maintains the SVM region's binding tables for the GPU and CPU device
///    models and pins the region across launches (section 2.3);
///  * materializes vtables and the global-symbol values in the shared
///    region and installs object vptrs (section 3.2);
///  * runs kernels under the machine's GPU or CPU timing model, or reports
///    that the kernel must fall back to native CPU execution because it
///    uses features outside Concord's GPU subset (section 2.1);
///  * implements the reduction protocol of section 3.3: device-side
///    work-group trees into a scratch surface, sequential host join of the
///    per-group partials.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_RUNTIME_RUNTIME_H
#define CONCORD_RUNTIME_RUNTIME_H

#include "codegen/Bytecode.h"
#include "gpusim/MachineConfig.h"
#include "gpusim/Simulator.h"
#include "runtime/ThreadPool.h"
#include "svm/BindingTable.h"
#include "svm/SharedRegion.h"
#include "transforms/Passes.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace concord {
namespace runtime {

enum class Device { CPU, GPU };
enum class Construct { ParallelFor, ParallelReduce };

/// A kernel handle: CKL source plus the Body class to compile.
struct KernelSpec {
  std::string Source;
  std::string BodyClass;
};

struct LaunchReport {
  Device Executed = Device::CPU;
  bool FellBack = false; ///< Unsupported on GPU; caller must run natively.
  bool Ok = false;
  std::string Diagnostics;
  gpusim::SimResult Sim;
  double CompileSeconds = 0; ///< Nonzero only on the JIT-compiling launch.
  bool JitCached = false;
  transforms::PipelineStats OptStats;
};

/// Host-side sequential join callback for reductions.
using HostJoinFn = std::function<void(void *Into, void *From)>;

class Runtime {
public:
  // Implementation types, public so the compile cache helpers in
  // Runtime.cpp can name them.
  struct CachedProgram;
  struct Impl;

  Runtime(const gpusim::MachineConfig &Machine, svm::SharedRegion &Region,
          transforms::PipelineOptions GpuOptions =
              transforms::PipelineOptions::gpuAll());
  ~Runtime();

  svm::SharedRegion &region() { return Region; }
  const gpusim::MachineConfig &machine() const { return Machine; }
  ThreadPool &pool() { return Pool; }

  /// Changes the GPU optimization configuration (flushes the GPU side of
  /// the program cache). Used by the benchmark harnesses to sweep the
  /// paper's GPU / +PTROPT / +L3OPT / +ALL configurations.
  void setGpuOptions(const transforms::PipelineOptions &Options);

  /// Changes the simulator execution options for subsequent launches
  /// (host-side only: parallel core simulation, scalar fast paths). Does
  /// not affect modelled timing or energy.
  void setSimOptions(const gpusim::SimOptions &Options);
  const gpusim::SimOptions &simOptions() const;

  /// parallel_for_hetero backend. \p BodyPtr must point into the shared
  /// region. When \p OnCpu, the CPU machine model executes the kernel.
  LaunchReport offload(const KernelSpec &Spec, int64_t N, void *BodyPtr,
                       bool OnCpu);

  /// parallel_reduce_hetero backend: device-side group trees + host join
  /// of per-group partials into *BodyPtr.
  LaunchReport offloadReduce(const KernelSpec &Spec, int64_t N,
                             void *BodyPtr, size_t BodyBytes,
                             const HostJoinFn &Join, bool OnCpu);

  /// Writes the shared-region vtable pointers for \p ClassName into the
  /// object at \p Obj (all vtable groups, including secondary bases). The
  /// kernel for \p Spec must have been compiled (any offload does this);
  /// compile happens on demand otherwise.
  bool installVPtrs(const KernelSpec &Spec, void *Obj,
                    const std::string &ClassName);

  /// Static op-mix statistics of the compiled kernel (Figure 6).
  bool staticStats(const KernelSpec &Spec, codegen::OpMixStats *Out,
                   std::string *Error = nullptr);

  /// Compilation diagnostics for a spec (forces compilation).
  std::string diagnosticsFor(const KernelSpec &Spec);

  /// Number of distinct programs compiled so far (JIT cache size).
  size_t programCacheSize() const;

private:
  const gpusim::MachineConfig &Machine;
  svm::SharedRegion &Region;
  ThreadPool Pool;
  std::unique_ptr<Impl> P;
};

} // namespace runtime
} // namespace concord

#endif // CONCORD_RUNTIME_RUNTIME_H
