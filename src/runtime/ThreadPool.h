//===- ThreadPool.h - Native CPU data-parallel execution --------*- C++ -*-===//
///
/// \file
/// A TBB-like thread pool used for the *functional* CPU path: executing
/// Body::operator() natively on host threads. Timing comparisons use the
/// CPU machine model instead (so compiler effects cancel between devices);
/// this pool provides reference results for correctness checks and the CPU
/// fallback required when a kernel uses unsupported features (paper
/// section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_RUNTIME_THREADPOOL_H
#define CONCORD_RUNTIME_THREADPOOL_H

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace concord {
namespace runtime {

class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads = 0)
      : NumThreads(NumThreads ? NumThreads
                              : std::max(1u, std::thread::hardware_concurrency())) {}

  unsigned numThreads() const { return NumThreads; }

  /// Runs Fn(i) for i in [0, N) across the pool with dynamic chunking.
  void parallelFor(int64_t N, const std::function<void(int64_t)> &Fn) const {
    if (N <= 0)
      return;
    int64_t Chunk = std::max<int64_t>(1, N / (int64_t(NumThreads) * 8));
    std::atomic<int64_t> Next{0};
    auto Work = [&] {
      while (true) {
        int64_t Begin = Next.fetch_add(Chunk);
        if (Begin >= N)
          return;
        int64_t End = std::min(Begin + Chunk, N);
        for (int64_t I = Begin; I < End; ++I)
          Fn(I);
      }
    };
    if (NumThreads == 1 || N < Chunk * 2) {
      Work();
      return;
    }
    std::vector<std::thread> Threads;
    for (unsigned T = 1; T < NumThreads; ++T)
      Threads.emplace_back(Work);
    Work();
    for (std::thread &T : Threads)
      T.join();
  }

private:
  unsigned NumThreads;
};

} // namespace runtime
} // namespace concord

#endif // CONCORD_RUNTIME_THREADPOOL_H
