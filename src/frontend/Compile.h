//===- Compile.h - CKL -> Concord IR compilation entry points --*- C++ -*-===//
///
/// \file
/// Public interface of the Concord kernel compiler frontend: compile a CKL
/// translation unit to a CIR module, create kernel entry wrappers for body
/// classes (the Figure 1 ABI), and run the section 2.1 restriction checks
/// whose violations trigger CPU fallback.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_FRONTEND_COMPILE_H
#define CONCORD_FRONTEND_COMPILE_H

#include "cir/Module.h"
#include "support/Diagnostics.h"
#include <memory>
#include <string_view>

namespace concord {
namespace frontend {

/// Compiles CKL source to a CIR module. All classes are laid out, methods
/// and free functions lowered, vtable slots resolved (with this-adjusting
/// thunks for secondary bases), and the no-recursion restriction checked.
/// Returns null when \p Diags has errors afterwards; "unsupported feature"
/// diagnostics do not fail the compile (callers fall back to the CPU).
std::unique_ptr<cir::Module> compileProgram(std::string_view Source,
                                            const std::string &ModuleName,
                                            DiagnosticEngine &Diags);

/// Finds the lowered function for \p ClassName::MethodName taking
/// \p NumExplicitArgs arguments after `this` (ignoring sret lowering).
/// Returns null when absent or ambiguous.
cir::Function *findMethod(cir::Module &M, const std::string &ClassName,
                          const std::string &MethodName,
                          unsigned NumExplicitArgs);

/// Creates the kernel entry wrapper for Body class \p ClassName following
/// the paper's Figure 1 ABI: one u64 argument (the CPU virtual address of
/// the Body object); the global work-item id becomes operator()'s index
/// argument. Returns null (with a diagnostic) if the class or its
/// operator()(int) is missing.
cir::Function *createKernelEntry(cir::Module &M, const std::string &ClassName,
                                 DiagnosticEngine &Diags);

} // namespace frontend
} // namespace concord

#endif // CONCORD_FRONTEND_COMPILE_H
