//===- Parser.cpp ---------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace concord;
using namespace concord::frontend;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  TranslationUnit run() {
    TranslationUnit Unit;
    parseDecls(Unit, /*NsPrefix=*/"");
    return Unit;
  }

private:
  //===--- Token plumbing -------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return peek().is(K); }
  bool match(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  const Token &expect(TokKind K, const char *What) {
    if (!check(K)) {
      Diags.error(peek().Loc, std::string("expected ") + What);
      return peek();
    }
    return advance();
  }
  SourceLoc loc() const { return peek().Loc; }

  /// Skips tokens until a likely recovery point.
  void recoverTo(TokKind K) {
    while (!check(TokKind::End) && !check(K))
      advance();
    match(K);
  }

  //===--- Types ----------------------------------------------------------===//

  static bool isBuiltinTypeTok(TokKind K) {
    switch (K) {
    case TokKind::KwVoid:
    case TokKind::KwBool:
    case TokKind::KwChar:
    case TokKind::KwUChar:
    case TokKind::KwShort:
    case TokKind::KwUShort:
    case TokKind::KwInt:
    case TokKind::KwUInt:
    case TokKind::KwLong:
    case TokKind::KwULong:
    case TokKind::KwFloat:
      return true;
    default:
      return false;
    }
  }

  static BuiltinKind builtinKindFor(TokKind K) {
    switch (K) {
    case TokKind::KwVoid: return BuiltinKind::Void;
    case TokKind::KwBool: return BuiltinKind::Bool;
    case TokKind::KwChar: return BuiltinKind::Char;
    case TokKind::KwUChar: return BuiltinKind::UChar;
    case TokKind::KwShort: return BuiltinKind::Short;
    case TokKind::KwUShort: return BuiltinKind::UShort;
    case TokKind::KwInt: return BuiltinKind::Int;
    case TokKind::KwUInt: return BuiltinKind::UInt;
    case TokKind::KwLong: return BuiltinKind::Long;
    case TokKind::KwULong: return BuiltinKind::ULong;
    case TokKind::KwFloat: return BuiltinKind::Float;
    default:
      assert(false && "not a builtin type token");
      return BuiltinKind::Void;
    }
  }

  /// True when the upcoming tokens start a type (used for decl-vs-expr
  /// disambiguation and for casts).
  bool startsType(size_t Ahead = 0) const {
    TokKind K = peek(Ahead).Kind;
    if (K == TokKind::KwConst)
      return startsType(Ahead + 1);
    return isBuiltinTypeTok(K) || K == TokKind::Identifier;
  }

  /// Parses: const? base ('::' ident)* '*'* '&'?
  TypeSyntax parseType() {
    TypeSyntax T;
    T.Loc = loc();
    match(TokKind::KwConst);
    if (isBuiltinTypeTok(peek().Kind)) {
      T.Base = builtinKindFor(advance().Kind);
    } else if (check(TokKind::Identifier)) {
      T.Base = BuiltinKind::Named;
      T.Name = advance().Text;
      while (check(TokKind::ColonColon) &&
             peek(1).is(TokKind::Identifier)) {
        advance();
        T.Name += "::" + advance().Text;
      }
    } else {
      Diags.error(loc(), "expected a type");
      advance();
    }
    match(TokKind::KwConst);
    while (match(TokKind::Star)) {
      ++T.PtrDepth;
      match(TokKind::KwConst);
    }
    if (match(TokKind::Amp))
      T.IsRef = true;
    return T;
  }

  //===--- Declarations ---------------------------------------------------===//

  void parseDecls(TranslationUnit &Unit, const std::string &NsPrefix) {
    while (!check(TokKind::End) && !check(TokKind::RBrace)) {
      if (match(TokKind::KwNamespace)) {
        std::string Name = expect(TokKind::Identifier, "namespace name").Text;
        expect(TokKind::LBrace, "'{'");
        parseDecls(Unit, NsPrefix.empty() ? Name : NsPrefix + "::" + Name);
        expect(TokKind::RBrace, "'}'");
        continue;
      }
      if (check(TokKind::KwClass) || check(TokKind::KwStruct)) {
        bool DefaultPublic = peek().is(TokKind::KwStruct);
        advance();
        parseClass(Unit, NsPrefix, DefaultPublic);
        continue;
      }
      if (check(TokKind::KwStatic)) {
        Diags.unsupported(loc(), "static storage in kernel code");
        advance();
        continue;
      }
      // Free function: type name(params) body.
      if (startsType()) {
        parseFreeFunction(Unit, NsPrefix);
        continue;
      }
      Diags.error(loc(), "expected a declaration");
      advance();
    }
  }

  void parseClass(TranslationUnit &Unit, const std::string &NsPrefix,
                  bool DefaultPublic) {
    auto Class = std::make_unique<ClassDecl>();
    Class->Loc = loc();
    std::string Name = expect(TokKind::Identifier, "class name").Text;
    Class->Name = NsPrefix.empty() ? Name : NsPrefix + "::" + Name;

    if (match(TokKind::Colon)) {
      do {
        // Ignore access specifiers on bases.
        if (check(TokKind::KwPublic) || check(TokKind::KwPrivate) ||
            check(TokKind::KwProtected))
          advance();
        if (match(TokKind::KwVirtual))
          Diags.unsupported(loc(), "virtual base classes");
        std::string BaseName =
            expect(TokKind::Identifier, "base class name").Text;
        while (check(TokKind::ColonColon) &&
               peek(1).is(TokKind::Identifier)) {
          advance();
          BaseName += "::" + advance().Text;
        }
        Class->BaseNames.push_back(std::move(BaseName));
      } while (match(TokKind::Comma));
    }

    expect(TokKind::LBrace, "'{'");
    (void)DefaultPublic; // Access control is parsed but not enforced.
    while (!check(TokKind::RBrace) && !check(TokKind::End)) {
      if ((check(TokKind::KwPublic) || check(TokKind::KwPrivate) ||
           check(TokKind::KwProtected)) &&
          peek(1).is(TokKind::Colon)) {
        advance();
        advance();
        continue;
      }
      parseMember(*Class);
    }
    expect(TokKind::RBrace, "'}'");
    match(TokKind::Semicolon);
    Unit.Classes.push_back(std::move(Class));
  }

  /// Parses "operator" followed by an operator symbol; returns the method
  /// name, e.g. "operator()" or "operator+".
  std::string parseOperatorName() {
    SourceLoc L = loc();
    if (match(TokKind::LParen)) {
      expect(TokKind::RParen, "')' after 'operator('");
      return "operator()";
    }
    if (match(TokKind::LBracket)) {
      expect(TokKind::RBracket, "']' after 'operator['");
      return "operator[]";
    }
    switch (advance().Kind) {
    case TokKind::Plus: return "operator+";
    case TokKind::Minus: return "operator-";
    case TokKind::Star: return "operator*";
    case TokKind::Slash: return "operator/";
    case TokKind::EqualEqual: return "operator==";
    case TokKind::BangEqual: return "operator!=";
    case TokKind::Less: return "operator<";
    case TokKind::Greater: return "operator>";
    default:
      Diags.error(L, "unsupported operator overload");
      return "operator?";
    }
  }

  void parseMember(ClassDecl &Class) {
    bool IsVirtual = match(TokKind::KwVirtual);
    if (check(TokKind::KwStatic)) {
      Diags.unsupported(loc(), "static members in kernel code");
      advance();
    }
    TypeSyntax Type = parseType();

    std::string Name;
    if (match(TokKind::KwOperator))
      Name = parseOperatorName();
    else
      Name = expect(TokKind::Identifier, "member name").Text;

    if (check(TokKind::LParen)) {
      auto Fn = parseFunctionRest(std::move(Name), std::move(Type));
      Fn->IsVirtual = IsVirtual;
      Class.Methods.push_back(std::move(Fn));
      return;
    }

    if (IsVirtual)
      Diags.error(loc(), "'virtual' on a data member");
    FieldDecl Field;
    Field.Loc = loc();
    Field.Type = std::move(Type);
    Field.Name = std::move(Name);
    if (match(TokKind::LBracket)) {
      Field.Type.ArrayLen =
          int64_t(expect(TokKind::IntLiteral, "array length").IntVal);
      expect(TokKind::RBracket, "']'");
    }
    expect(TokKind::Semicolon, "';' after field");
    Class.Fields.push_back(std::move(Field));
  }

  void parseFreeFunction(TranslationUnit &Unit, const std::string &NsPrefix) {
    TypeSyntax Ret = parseType();
    std::string Name = expect(TokKind::Identifier, "function name").Text;
    auto Fn = parseFunctionRest(Name, std::move(Ret));
    Unit.FunctionQualNames.push_back(
        NsPrefix.empty() ? Name : NsPrefix + "::" + Name);
    Unit.Functions.push_back(std::move(Fn));
  }

  std::unique_ptr<FunctionDecl> parseFunctionRest(std::string Name,
                                                  TypeSyntax Ret) {
    auto Fn = std::make_unique<FunctionDecl>();
    Fn->Loc = loc();
    Fn->Name = std::move(Name);
    Fn->ReturnType = std::move(Ret);
    expect(TokKind::LParen, "'('");
    if (!check(TokKind::RParen)) {
      do {
        ParamDecl P;
        P.Loc = loc();
        P.Type = parseType();
        if (check(TokKind::Identifier))
          P.Name = advance().Text;
        Fn->Params.push_back(std::move(P));
      } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "')'");
    match(TokKind::KwConst); // const methods accepted, ignored.
    if (match(TokKind::Assign)) {
      // Pure virtual: `= 0;`.
      const Token &Zero = expect(TokKind::IntLiteral, "'0'");
      if (Zero.IntVal != 0)
        Diags.error(Zero.Loc, "expected '= 0' for a pure virtual method");
      Fn->IsPure = true;
      expect(TokKind::Semicolon, "';'");
      return Fn;
    }
    if (match(TokKind::Semicolon))
      return Fn; // Declaration only.
    Fn->Body = parseCompound();
    return Fn;
  }

  //===--- Statements -----------------------------------------------------===//

  StmtPtr parseCompound() {
    SourceLoc L = loc();
    expect(TokKind::LBrace, "'{'");
    std::vector<StmtPtr> Body;
    while (!check(TokKind::RBrace) && !check(TokKind::End))
      Body.push_back(parseStmt());
    expect(TokKind::RBrace, "'}'");
    return std::make_unique<CompoundStmt>(std::move(Body), L);
  }

  /// True when the statement starting here is a declaration. For an
  /// identifier head this requires the shape `Name ('::' Name)* '*'* Ident`
  /// (so `a * b;` parses as a declaration, matching C++'s resolution once
  /// `a` names a type).
  bool stmtIsDecl() const {
    if (isBuiltinTypeTok(peek().Kind) || peek().is(TokKind::KwConst))
      return true;
    if (!peek().is(TokKind::Identifier))
      return false;
    size_t A = 1;
    while (peek(A).is(TokKind::ColonColon) &&
           peek(A + 1).is(TokKind::Identifier))
      A += 2;
    while (peek(A).is(TokKind::Star))
      ++A;
    if (!peek(A).is(TokKind::Identifier))
      return false;
    TokKind After = peek(A + 1).Kind;
    return After == TokKind::Assign || After == TokKind::Semicolon ||
           After == TokKind::LBracket || After == TokKind::Comma;
  }

  StmtPtr parseStmt() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseCompound();
    case TokKind::KwIf: {
      advance();
      expect(TokKind::LParen, "'('");
      ExprPtr Cond = parseExpr();
      expect(TokKind::RParen, "')'");
      StmtPtr Then = parseStmt();
      StmtPtr Else;
      if (match(TokKind::KwElse))
        Else = parseStmt();
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else), L);
    }
    case TokKind::KwWhile: {
      advance();
      expect(TokKind::LParen, "'('");
      ExprPtr Cond = parseExpr();
      expect(TokKind::RParen, "')'");
      StmtPtr Body = parseStmt();
      return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), L);
    }
    case TokKind::KwFor: {
      advance();
      expect(TokKind::LParen, "'('");
      StmtPtr Init;
      if (!match(TokKind::Semicolon)) {
        if (stmtIsDecl())
          Init = parseDeclStmt();
        else {
          Init = std::make_unique<ExprStmt>(parseExpr(), L);
          expect(TokKind::Semicolon, "';'");
        }
      }
      ExprPtr Cond;
      if (!check(TokKind::Semicolon))
        Cond = parseExpr();
      expect(TokKind::Semicolon, "';'");
      ExprPtr Step;
      if (!check(TokKind::RParen))
        Step = parseExpr();
      expect(TokKind::RParen, "')'");
      StmtPtr Body = parseStmt();
      return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                       std::move(Step), std::move(Body), L);
    }
    case TokKind::KwDo: {
      Diags.unsupported(L, "do-while loops");
      advance();
      parseStmt();
      if (match(TokKind::KwWhile)) {
        expect(TokKind::LParen, "'('");
        parseExpr();
        expect(TokKind::RParen, "')'");
      }
      match(TokKind::Semicolon);
      return std::make_unique<BreakStmt>(L);
    }
    case TokKind::KwReturn: {
      advance();
      ExprPtr Value;
      if (!check(TokKind::Semicolon))
        Value = parseExpr();
      expect(TokKind::Semicolon, "';'");
      return std::make_unique<ReturnStmt>(std::move(Value), L);
    }
    case TokKind::KwBreak:
      advance();
      expect(TokKind::Semicolon, "';'");
      return std::make_unique<BreakStmt>(L);
    case TokKind::KwContinue:
      advance();
      expect(TokKind::Semicolon, "';'");
      return std::make_unique<ContinueStmt>(L);
    case TokKind::KwThrow:
    case TokKind::KwTry:
      Diags.unsupported(L, "exceptions in kernel code");
      recoverTo(TokKind::Semicolon);
      return std::make_unique<BreakStmt>(L);
    case TokKind::KwGoto:
      Diags.unsupported(L, "goto in kernel code");
      recoverTo(TokKind::Semicolon);
      return std::make_unique<BreakStmt>(L);
    case TokKind::KwSwitch:
      Diags.unsupported(L, "switch in kernel code (use if/else chains)");
      recoverTo(TokKind::RBrace);
      return std::make_unique<BreakStmt>(L);
    case TokKind::KwDelete:
      Diags.unsupported(L, "memory deallocation in kernel code");
      recoverTo(TokKind::Semicolon);
      return std::make_unique<BreakStmt>(L);
    default:
      break;
    }
    if (stmtIsDecl())
      return parseDeclStmt();
    ExprPtr E = parseExpr();
    expect(TokKind::Semicolon, "';'");
    return std::make_unique<ExprStmt>(std::move(E), L);
  }

  StmtPtr parseDeclStmt() {
    SourceLoc L = loc();
    TypeSyntax Type = parseType();
    std::string Name = expect(TokKind::Identifier, "variable name").Text;
    if (match(TokKind::LBracket)) {
      Type.ArrayLen =
          int64_t(expect(TokKind::IntLiteral, "array length").IntVal);
      expect(TokKind::RBracket, "']'");
    }
    ExprPtr Init;
    if (match(TokKind::Assign))
      Init = parseAssign();
    if (match(TokKind::Comma))
      Diags.error(loc(), "multiple declarators per statement not supported");
    expect(TokKind::Semicolon, "';'");
    return std::make_unique<DeclStmt>(std::move(Type), std::move(Name),
                                      std::move(Init), L);
  }

  //===--- Expressions ----------------------------------------------------===//

  ExprPtr parseExpr() { return parseAssign(); }

  ExprPtr parseAssign() {
    ExprPtr LHS = parseConditional();
    SourceLoc L = loc();
    bool Compound = true;
    BinaryOp Op = BinaryOp::Add;
    switch (peek().Kind) {
    case TokKind::Assign:
      Compound = false;
      break;
    case TokKind::PlusAssign: Op = BinaryOp::Add; break;
    case TokKind::MinusAssign: Op = BinaryOp::Sub; break;
    case TokKind::StarAssign: Op = BinaryOp::Mul; break;
    case TokKind::SlashAssign: Op = BinaryOp::Div; break;
    case TokKind::PercentAssign: Op = BinaryOp::Rem; break;
    case TokKind::AmpAssign: Op = BinaryOp::And; break;
    case TokKind::PipeAssign: Op = BinaryOp::Or; break;
    case TokKind::CaretAssign: Op = BinaryOp::Xor; break;
    case TokKind::ShlAssign: Op = BinaryOp::Shl; break;
    case TokKind::ShrAssign: Op = BinaryOp::Shr; break;
    default:
      return LHS;
    }
    advance();
    ExprPtr RHS = parseAssign();
    return std::make_unique<AssignExpr>(Compound, Op, std::move(LHS),
                                        std::move(RHS), L);
  }

  ExprPtr parseConditional() {
    ExprPtr Cond = parseBinary(0);
    if (!check(TokKind::Question))
      return Cond;
    SourceLoc L = advance().Loc;
    ExprPtr T = parseAssign();
    expect(TokKind::Colon, "':'");
    ExprPtr F = parseConditional();
    return std::make_unique<ConditionalExpr>(std::move(Cond), std::move(T),
                                             std::move(F), L);
  }

  /// Binary operator precedence; -1 when not a binary operator.
  static int precedenceOf(TokKind K, BinaryOp *Op) {
    switch (K) {
    case TokKind::PipePipe: *Op = BinaryOp::LOr; return 1;
    case TokKind::AmpAmp: *Op = BinaryOp::LAnd; return 2;
    case TokKind::Pipe: *Op = BinaryOp::Or; return 3;
    case TokKind::Caret: *Op = BinaryOp::Xor; return 4;
    case TokKind::Amp: *Op = BinaryOp::And; return 5;
    case TokKind::EqualEqual: *Op = BinaryOp::EQ; return 6;
    case TokKind::BangEqual: *Op = BinaryOp::NE; return 6;
    case TokKind::Less: *Op = BinaryOp::LT; return 7;
    case TokKind::LessEqual: *Op = BinaryOp::LE; return 7;
    case TokKind::Greater: *Op = BinaryOp::GT; return 7;
    case TokKind::GreaterEqual: *Op = BinaryOp::GE; return 7;
    case TokKind::Shl: *Op = BinaryOp::Shl; return 8;
    case TokKind::Shr: *Op = BinaryOp::Shr; return 8;
    case TokKind::Plus: *Op = BinaryOp::Add; return 9;
    case TokKind::Minus: *Op = BinaryOp::Sub; return 9;
    case TokKind::Star: *Op = BinaryOp::Mul; return 10;
    case TokKind::Slash: *Op = BinaryOp::Div; return 10;
    case TokKind::Percent: *Op = BinaryOp::Rem; return 10;
    default:
      return -1;
    }
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr LHS = parseUnary();
    while (true) {
      BinaryOp Op;
      int Prec = precedenceOf(peek().Kind, &Op);
      if (Prec < 0 || Prec < MinPrec)
        return LHS;
      SourceLoc L = advance().Loc;
      ExprPtr RHS = parseBinary(Prec + 1);
      LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS), L);
    }
  }

  /// True when '(' at the current position begins a C-style cast. Casts to
  /// named (class) types require at least one '*'.
  bool isCastStart() const {
    assert(peek().is(TokKind::LParen));
    size_t A = 1;
    if (peek(A).is(TokKind::KwConst))
      ++A;
    if (isBuiltinTypeTok(peek(A).Kind)) {
      ++A;
      while (peek(A).is(TokKind::Star))
        ++A;
      return peek(A).is(TokKind::RParen);
    }
    if (!peek(A).is(TokKind::Identifier))
      return false;
    ++A;
    while (peek(A).is(TokKind::ColonColon) &&
           peek(A + 1).is(TokKind::Identifier))
      A += 2;
    if (!peek(A).is(TokKind::Star))
      return false;
    while (peek(A).is(TokKind::Star))
      ++A;
    return peek(A).is(TokKind::RParen);
  }

  ExprPtr parseUnary() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::Minus:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), L);
    case TokKind::Bang:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), L);
    case TokKind::Tilde:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary(), L);
    case TokKind::Star:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::Deref, parseUnary(), L);
    case TokKind::Amp:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::AddrOf, parseUnary(), L);
    case TokKind::PlusPlus:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::PreInc, parseUnary(), L);
    case TokKind::MinusMinus:
      advance();
      return std::make_unique<UnaryExpr>(UnaryOp::PreDec, parseUnary(), L);
    case TokKind::Plus:
      advance();
      return parseUnary();
    case TokKind::KwNew: {
      Diags.unsupported(L, "memory allocation in kernel code");
      advance();
      if (startsType())
        parseType();
      return std::make_unique<IntLitExpr>(0, L);
    }
    case TokKind::LParen:
      if (isCastStart()) {
        advance();
        TypeSyntax Target = parseType();
        expect(TokKind::RParen, "')'");
        return std::make_unique<CastExpr>(std::move(Target), parseUnary(), L);
      }
      break;
    default:
      break;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (true) {
      SourceLoc L = loc();
      if (match(TokKind::Dot) || (check(TokKind::Arrow) && (advance(), true))) {
        bool IsArrow = Tokens[Pos - 1].is(TokKind::Arrow);
        std::string Name;
        std::string Qualifier;
        if (match(TokKind::KwOperator))
          Name = parseOperatorName();
        else {
          Name = expect(TokKind::Identifier, "member name").Text;
          // Qualified call: obj.Base::m(...).
          while (check(TokKind::ColonColon) &&
                 peek(1).is(TokKind::Identifier)) {
            advance();
            Qualifier = Qualifier.empty() ? Name : Qualifier + "::" + Name;
            Name = advance().Text;
          }
        }
        if (check(TokKind::LParen)) {
          std::vector<ExprPtr> Args = parseArgs();
          auto MC = std::make_unique<MethodCallExpr>(
              std::move(E), std::move(Name), IsArrow, std::move(Args), L);
          MC->QualifiedClass = std::move(Qualifier);
          E = std::move(MC);
        } else {
          E = std::make_unique<MemberExpr>(std::move(E), std::move(Name),
                                           IsArrow, L);
        }
        continue;
      }
      if (check(TokKind::LBracket)) {
        advance();
        ExprPtr Index = parseExpr();
        expect(TokKind::RBracket, "']'");
        E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), L);
        continue;
      }
      if (match(TokKind::PlusPlus)) {
        E = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(E), L);
        continue;
      }
      if (match(TokKind::MinusMinus)) {
        E = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(E), L);
        continue;
      }
      return E;
    }
  }

  std::vector<ExprPtr> parseArgs() {
    expect(TokKind::LParen, "'('");
    std::vector<ExprPtr> Args;
    if (!check(TokKind::RParen)) {
      do {
        Args.push_back(parseAssign());
      } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "')'");
    return Args;
  }

  ExprPtr parsePrimary() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::IntLiteral:
      return std::make_unique<IntLitExpr>(advance().IntVal, L);
    case TokKind::FloatLiteral:
      return std::make_unique<FloatLitExpr>(advance().FloatVal, L);
    case TokKind::KwTrue:
      advance();
      return std::make_unique<BoolLitExpr>(true, L);
    case TokKind::KwFalse:
      advance();
      return std::make_unique<BoolLitExpr>(false, L);
    case TokKind::KwNullptr:
      advance();
      return std::make_unique<NullLitExpr>(L);
    case TokKind::KwThis:
      advance();
      return std::make_unique<ThisExpr>(L);
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "')'");
      return E;
    }
    case TokKind::Identifier: {
      std::vector<std::string> Path{advance().Text};
      while (check(TokKind::ColonColon) && peek(1).is(TokKind::Identifier)) {
        advance();
        Path.push_back(advance().Text);
      }
      if (check(TokKind::LParen)) {
        std::vector<ExprPtr> Args = parseArgs();
        return std::make_unique<CallExpr>(std::move(Path), std::move(Args),
                                          L);
      }
      return std::make_unique<NameRefExpr>(std::move(Path), L);
    }
    default:
      Diags.error(L, "expected an expression");
      advance();
      return std::make_unique<IntLitExpr>(0, L);
    }
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

TranslationUnit concord::frontend::parse(std::string_view Source,
                                         DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  return Parser(std::move(Tokens), Diags).run();
}
