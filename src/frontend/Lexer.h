//===- Lexer.h - Concord Kernel Language lexer ------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the Concord Kernel Language (CKL), the C++ subset accepted
/// for device code: classes with single and multiple inheritance, virtual
/// functions, function and operator overloading, namespaces, pointers, and
/// fixed-size arrays.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_FRONTEND_LEXER_H
#define CONCORD_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include <string>
#include <vector>

namespace concord {
namespace frontend {

enum class TokKind {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,

  // Keywords.
  KwClass, KwStruct, KwPublic, KwPrivate, KwProtected, KwVirtual,
  KwNamespace, KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak,
  KwContinue, KwTrue, KwFalse, KwNullptr, KwThis, KwOperator, KwConst,
  KwVoid, KwBool, KwChar, KwUChar, KwShort, KwUShort, KwInt, KwUInt,
  KwLong, KwULong, KwFloat,
  // Recognized only to produce "unsupported feature" diagnostics.
  KwNew, KwDelete, KwThrow, KwTry, KwCatch, KwGoto, KwSwitch, KwStatic,

  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Colon, ColonColon, Question,
  Dot, Arrow,
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Shl, Shr,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  Less, LessEqual, Greater, GreaterEqual, EqualEqual, BangEqual,
};

struct Token {
  TokKind Kind = TokKind::End;
  SourceLoc Loc;
  std::string Text;   ///< Identifier spelling.
  uint64_t IntVal = 0;
  double FloatVal = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Tokenizes an entire buffer. Lexical errors go to \p Diags and produce a
/// best-effort token stream terminated by an End token.
std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags);

/// Printable token kind name for diagnostics.
const char *tokKindName(TokKind Kind);

} // namespace frontend
} // namespace concord

#endif // CONCORD_FRONTEND_LEXER_H
