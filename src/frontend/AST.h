//===- AST.h - Concord Kernel Language abstract syntax tree ----*- C++ -*-===//
///
/// \file
/// Untyped AST produced by the parser. Semantic analysis / IR generation
/// resolves names, checks types against the CIR type system, and enforces
/// Concord's GPU restrictions.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_FRONTEND_AST_H
#define CONCORD_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace concord {
namespace frontend {

//===----------------------------------------------------------------------===//
// Type syntax
//===----------------------------------------------------------------------===//

enum class BuiltinKind {
  Void, Bool, Char, UChar, Short, UShort, Int, UInt, Long, ULong, Float,
  Named, ///< Class type; see TypeSyntax::Name.
};

/// The written form of a type: base + pointer depth + optional array length
/// + optional reference (parameters only).
struct TypeSyntax {
  BuiltinKind Base = BuiltinKind::Void;
  std::string Name;       ///< For BuiltinKind::Named (may be qualified).
  unsigned PtrDepth = 0;  ///< Number of '*'s.
  int64_t ArrayLen = -1;  ///< >= 0 for a fixed array of the base type.
  bool IsRef = false;     ///< Reference (sugar for pointer + auto-deref).
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit, FloatLit, BoolLit, NullLit, This,
  NameRef, Member, Index, Call, MethodCall,
  Unary, Binary, Assign, Conditional, CastExpr,
};

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;
  virtual ~Expr() = default;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  uint64_t Value;
  IntLitExpr(uint64_t V, SourceLoc L) : Expr(ExprKind::IntLit, L), Value(V) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::IntLit; }
};

struct FloatLitExpr : Expr {
  double Value;
  FloatLitExpr(double V, SourceLoc L)
      : Expr(ExprKind::FloatLit, L), Value(V) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::FloatLit; }
};

struct BoolLitExpr : Expr {
  bool Value;
  BoolLitExpr(bool V, SourceLoc L) : Expr(ExprKind::BoolLit, L), Value(V) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::BoolLit; }
};

struct NullLitExpr : Expr {
  explicit NullLitExpr(SourceLoc L) : Expr(ExprKind::NullLit, L) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::NullLit; }
};

struct ThisExpr : Expr {
  explicit ThisExpr(SourceLoc L) : Expr(ExprKind::This, L) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::This; }
};

/// A possibly-qualified name: "x", "ns::f", "Base::method".
struct NameRefExpr : Expr {
  std::vector<std::string> Path;
  NameRefExpr(std::vector<std::string> Path, SourceLoc L)
      : Expr(ExprKind::NameRef, L), Path(std::move(Path)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::NameRef; }
};

struct MemberExpr : Expr {
  ExprPtr Base;
  std::string Name;
  bool IsArrow;
  MemberExpr(ExprPtr Base, std::string Name, bool IsArrow, SourceLoc L)
      : Expr(ExprKind::Member, L), Base(std::move(Base)),
        Name(std::move(Name)), IsArrow(IsArrow) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Member; }
};

struct IndexExpr : Expr {
  ExprPtr Base, Index;
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc L)
      : Expr(ExprKind::Index, L), Base(std::move(Base)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Index; }
};

/// Free function call `f(a, b)` or qualified `ns::f(a)`.
struct CallExpr : Expr {
  std::vector<std::string> CalleePath;
  std::vector<ExprPtr> Args;
  CallExpr(std::vector<std::string> CalleePath, std::vector<ExprPtr> Args,
           SourceLoc L)
      : Expr(ExprKind::Call, L), CalleePath(std::move(CalleePath)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Call; }
};

/// Method call `base.m(a)` / `base->m(a)` / `base(args)` (operator()).
struct MethodCallExpr : Expr {
  ExprPtr Base;
  std::string Name; ///< "operator()" for functor application.
  bool IsArrow;
  /// Non-empty when the call is qualified (Base::m(...)): disables virtual
  /// dispatch and names the class explicitly.
  std::string QualifiedClass;
  std::vector<ExprPtr> Args;
  MethodCallExpr(ExprPtr Base, std::string Name, bool IsArrow,
                 std::vector<ExprPtr> Args, SourceLoc L)
      : Expr(ExprKind::MethodCall, L), Base(std::move(Base)),
        Name(std::move(Name)), IsArrow(IsArrow), Args(std::move(Args)) {}
  static bool classof(const Expr *E) {
    return E->Kind == ExprKind::MethodCall;
  }
};

enum class UnaryOp {
  Neg, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec
};

struct UnaryExpr : Expr {
  UnaryOp Op;
  ExprPtr Sub;
  UnaryExpr(UnaryOp Op, ExprPtr Sub, SourceLoc L)
      : Expr(ExprKind::Unary, L), Op(Op), Sub(std::move(Sub)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Unary; }
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  LAnd, LOr,
  LT, LE, GT, GE, EQ, NE,
};

struct BinaryExpr : Expr {
  BinaryOp Op;
  ExprPtr LHS, RHS;
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc L)
      : Expr(ExprKind::Binary, L), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Binary; }
};

/// `lhs = rhs` or compound `lhs op= rhs` (Op holds the compound operator;
/// IsCompound false means plain assignment).
struct AssignExpr : Expr {
  bool IsCompound;
  BinaryOp Op;
  ExprPtr LHS, RHS;
  AssignExpr(bool IsCompound, BinaryOp Op, ExprPtr LHS, ExprPtr RHS,
             SourceLoc L)
      : Expr(ExprKind::Assign, L), IsCompound(IsCompound), Op(Op),
        LHS(std::move(LHS)), RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Assign; }
};

struct ConditionalExpr : Expr {
  ExprPtr Cond, TrueE, FalseE;
  ConditionalExpr(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc L)
      : Expr(ExprKind::Conditional, L), Cond(std::move(C)),
        TrueE(std::move(T)), FalseE(std::move(F)) {}
  static bool classof(const Expr *E) {
    return E->Kind == ExprKind::Conditional;
  }
};

struct CastExpr : Expr {
  TypeSyntax Target;
  ExprPtr Sub;
  CastExpr(TypeSyntax Target, ExprPtr Sub, SourceLoc L)
      : Expr(ExprKind::CastExpr, L), Target(std::move(Target)),
        Sub(std::move(Sub)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::CastExpr; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Decl, Expr, Compound, If, While, For, Return, Break, Continue,
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  virtual ~Stmt() = default;

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

struct DeclStmt : Stmt {
  TypeSyntax Type;
  std::string Name;
  ExprPtr Init; ///< May be null.
  DeclStmt(TypeSyntax Type, std::string Name, ExprPtr Init, SourceLoc L)
      : Stmt(StmtKind::Decl, L), Type(std::move(Type)), Name(std::move(Name)),
        Init(std::move(Init)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Decl; }
};

struct ExprStmt : Stmt {
  ExprPtr E;
  ExprStmt(ExprPtr E, SourceLoc L) : Stmt(StmtKind::Expr, L), E(std::move(E)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Expr; }
};

struct CompoundStmt : Stmt {
  std::vector<StmtPtr> Body;
  CompoundStmt(std::vector<StmtPtr> Body, SourceLoc L)
      : Stmt(StmtKind::Compound, L), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Compound; }
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then, Else; ///< Else may be null.
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc L)
      : Stmt(StmtKind::If, L), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::If; }
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc L)
      : Stmt(StmtKind::While, L), Cond(std::move(Cond)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::While; }
};

struct ForStmt : Stmt {
  StmtPtr Init;  ///< DeclStmt or ExprStmt; may be null.
  ExprPtr Cond;  ///< May be null (infinite).
  ExprPtr Step;  ///< May be null.
  StmtPtr Body;
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body, SourceLoc L)
      : Stmt(StmtKind::For, L), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::For; }
};

struct ReturnStmt : Stmt {
  ExprPtr Value; ///< May be null.
  ReturnStmt(ExprPtr Value, SourceLoc L)
      : Stmt(StmtKind::Return, L), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Return; }
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc L) : Stmt(StmtKind::Break, L) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Break; }
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc L) : Stmt(StmtKind::Continue, L) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Continue; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  TypeSyntax Type;
  std::string Name;
  SourceLoc Loc;
};

struct FunctionDecl {
  std::string Name; ///< Unqualified; "operator()"/"operator+"/... allowed.
  TypeSyntax ReturnType;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< Null for a declaration without a body.
  bool IsVirtual = false;
  bool IsPure = false; ///< Pure virtual (`= 0`).
  SourceLoc Loc;
};

struct FieldDecl {
  TypeSyntax Type;
  std::string Name;
  SourceLoc Loc;
};

struct ClassDecl {
  std::string Name; ///< Qualified with enclosing namespaces ("ns::C").
  std::vector<std::string> BaseNames;
  std::vector<FieldDecl> Fields;
  std::vector<std::unique_ptr<FunctionDecl>> Methods;
  SourceLoc Loc;
};

/// A whole CKL translation unit (namespaces are flattened into qualified
/// names during parsing).
struct TranslationUnit {
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
  /// Qualified names for free functions, parallel to Functions.
  std::vector<std::string> FunctionQualNames;
};

} // namespace frontend
} // namespace concord

#endif // CONCORD_FRONTEND_AST_H
