//===- Lexer.cpp ----------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace concord;
using namespace concord::frontend;

static const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Map = {
      {"class", TokKind::KwClass},       {"struct", TokKind::KwStruct},
      {"public", TokKind::KwPublic},     {"private", TokKind::KwPrivate},
      {"protected", TokKind::KwProtected},
      {"virtual", TokKind::KwVirtual},   {"namespace", TokKind::KwNamespace},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},       {"for", TokKind::KwFor},
      {"do", TokKind::KwDo},             {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},       {"continue", TokKind::KwContinue},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"nullptr", TokKind::KwNullptr},   {"this", TokKind::KwThis},
      {"operator", TokKind::KwOperator}, {"const", TokKind::KwConst},
      {"void", TokKind::KwVoid},         {"bool", TokKind::KwBool},
      {"char", TokKind::KwChar},         {"uchar", TokKind::KwUChar},
      {"short", TokKind::KwShort},       {"ushort", TokKind::KwUShort},
      {"int", TokKind::KwInt},           {"uint", TokKind::KwUInt},
      {"long", TokKind::KwLong},         {"ulong", TokKind::KwULong},
      {"float", TokKind::KwFloat},       {"new", TokKind::KwNew},
      {"delete", TokKind::KwDelete},     {"throw", TokKind::KwThrow},
      {"try", TokKind::KwTry},           {"catch", TokKind::KwCatch},
      {"goto", TokKind::KwGoto},         {"switch", TokKind::KwSwitch},
      {"static", TokKind::KwStatic},
  };
  return Map;
}

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipTrivia();
      Token T = next();
      Tokens.push_back(T);
      if (T.Kind == TokKind::End)
        return Tokens;
    }
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  void skipTrivia() {
    while (true) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = loc();
        advance();
        advance();
        while (peek() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (!peek())
          Diags.error(Start, "unterminated block comment");
        else {
          advance();
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token make(TokKind Kind, SourceLoc L) {
    Token T;
    T.Kind = Kind;
    T.Loc = L;
    return T;
  }

  Token next() {
    SourceLoc L = loc();
    char C = peek();
    if (!C)
      return make(TokKind::End, L);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identifier(L);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number(L);

    advance();
    switch (C) {
    case '(': return make(TokKind::LParen, L);
    case ')': return make(TokKind::RParen, L);
    case '{': return make(TokKind::LBrace, L);
    case '}': return make(TokKind::RBrace, L);
    case '[': return make(TokKind::LBracket, L);
    case ']': return make(TokKind::RBracket, L);
    case ';': return make(TokKind::Semicolon, L);
    case ',': return make(TokKind::Comma, L);
    case '?': return make(TokKind::Question, L);
    case '~': return make(TokKind::Tilde, L);
    case ':':
      return make(match(':') ? TokKind::ColonColon : TokKind::Colon, L);
    case '.': return make(TokKind::Dot, L);
    case '+':
      if (match('+'))
        return make(TokKind::PlusPlus, L);
      return make(match('=') ? TokKind::PlusAssign : TokKind::Plus, L);
    case '-':
      if (match('-'))
        return make(TokKind::MinusMinus, L);
      if (match('>'))
        return make(TokKind::Arrow, L);
      return make(match('=') ? TokKind::MinusAssign : TokKind::Minus, L);
    case '*':
      return make(match('=') ? TokKind::StarAssign : TokKind::Star, L);
    case '/':
      return make(match('=') ? TokKind::SlashAssign : TokKind::Slash, L);
    case '%':
      return make(match('=') ? TokKind::PercentAssign : TokKind::Percent, L);
    case '&':
      if (match('&'))
        return make(TokKind::AmpAmp, L);
      return make(match('=') ? TokKind::AmpAssign : TokKind::Amp, L);
    case '|':
      if (match('|'))
        return make(TokKind::PipePipe, L);
      return make(match('=') ? TokKind::PipeAssign : TokKind::Pipe, L);
    case '^':
      return make(match('=') ? TokKind::CaretAssign : TokKind::Caret, L);
    case '!':
      return make(match('=') ? TokKind::BangEqual : TokKind::Bang, L);
    case '=':
      return make(match('=') ? TokKind::EqualEqual : TokKind::Assign, L);
    case '<':
      if (match('<'))
        return make(match('=') ? TokKind::ShlAssign : TokKind::Shl, L);
      return make(match('=') ? TokKind::LessEqual : TokKind::Less, L);
    case '>':
      if (match('>'))
        return make(match('=') ? TokKind::ShrAssign : TokKind::Shr, L);
      return make(match('=') ? TokKind::GreaterEqual : TokKind::Greater, L);
    default:
      Diags.error(L, std::string("unexpected character '") + C + "'");
      return next();
    }
  }

  Token identifier(SourceLoc L) {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordMap().find(Text);
    if (It != keywordMap().end())
      return make(It->second, L);
    Token T = make(TokKind::Identifier, L);
    T.Text = std::move(Text);
    return T;
  }

  Token number(SourceLoc L) {
    std::string Text;
    bool IsFloat = false;
    bool IsHex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      IsHex = true;
      Text += advance();
      Text += advance();
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        IsFloat = true;
        Text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        IsFloat = true;
        Text += advance();
        if (peek() == '+' || peek() == '-')
          Text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
    }
    // Suffixes: f => float, u/l ignored for value purposes.
    if (peek() == 'f' || peek() == 'F') {
      advance();
      IsFloat = true;
    } else {
      while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
        advance();
    }
    Token T = make(IsFloat ? TokKind::FloatLiteral : TokKind::IntLiteral, L);
    if (IsFloat)
      T.FloatVal = std::strtod(Text.c_str(), nullptr);
    else
      T.IntVal = std::strtoull(Text.c_str(), nullptr, IsHex ? 16 : 10);
    return T;
  }

  std::string_view Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::vector<Token> concord::frontend::lex(std::string_view Source,
                                          DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}

const char *concord::frontend::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::End: return "end of input";
  case TokKind::Identifier: return "identifier";
  case TokKind::IntLiteral: return "integer literal";
  case TokKind::FloatLiteral: return "float literal";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semicolon: return "';'";
  case TokKind::Comma: return "','";
  case TokKind::Colon: return "':'";
  case TokKind::ColonColon: return "'::'";
  case TokKind::Assign: return "'='";
  default: return "token";
  }
}
