//===- IRGen.cpp - CKL semantic analysis and IR generation ---------------===//
//
// Single component performing name resolution, type checking, overload
// resolution, class layout, vtable construction (including this-adjusting
// thunks for multiple inheritance), and CIR emission.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compile.h"

#include "analysis/CallGraph.h"
#include "cir/IRBuilder.h"
#include "frontend/Parser.h"
#include "support/StringUtils.h"

#include <map>
#include <optional>

using namespace concord;
using namespace concord::cir;
using namespace concord::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Lowered signatures
//===----------------------------------------------------------------------===//

/// How a CKL function signature maps onto a CIR function: class-valued
/// parameters and returns are lowered to pointers (byval copies / sret).
struct FnLowering {
  FunctionDecl *Decl = nullptr;
  Function *Fn = nullptr;
  ClassType *ThisClass = nullptr; ///< Null for free functions.
  bool IsVirtual = false;
  bool HasSRet = false;
  Type *RetSem = nullptr; ///< Semantic return type (class for sret).
  std::vector<Type *> ParamSem;
  std::vector<bool> ParamIsRef;
  std::vector<bool> ParamIsByValClass;
  FunctionType *VirtualSig = nullptr; ///< Slot signature (no this/sret).
};

/// An expression result: scalar rvalue, or the address of an aggregate.
struct ExprVal {
  Value *V = nullptr;
  Type *SemType = nullptr;
  bool IsAddr = false; ///< V is the address of a SemType aggregate.

  bool valid() const { return V != nullptr; }
};

struct LocalVar {
  Value *Addr = nullptr; ///< Alloca (or pointer for reference params).
  Type *SemType = nullptr;
  bool IsAlloca = false; ///< True for genuine locals (the &local check).
};

class IRGenerator {
public:
  IRGenerator(TranslationUnit &Unit, Module &M, DiagnosticEngine &Diags)
      : Unit(Unit), M(M), Diags(Diags), B(M) {}

  bool run();

private:
  //===--- Declarations ---------------------------------------------------===//
  bool registerClasses();
  bool layoutClass(ClassDecl &CD);
  bool createFunctions();
  void finalizeVTables();
  Function *createThunk(Function *Impl, ClassType *C, uint64_t Offset);
  bool generateBodies();
  void checkRecursion();

  FnLowering lowerSignature(FunctionDecl &FD, ClassType *ThisClass);

  //===--- Types ----------------------------------------------------------===//
  Type *builtinType(BuiltinKind K);
  ClassType *lookupClass(const std::string &Name, SourceLoc Loc,
                         bool Required);
  /// Resolves written type syntax. Sets \p IsRef when the syntax was a
  /// reference. Returns null and diagnoses on failure.
  Type *resolveType(const TypeSyntax &TS, bool *IsRef = nullptr);

  //===--- Statements / expressions ---------------------------------------===//
  void genStmt(Stmt &S);
  void genCompound(CompoundStmt &S);
  ExprVal genExpr(Expr &E);
  /// Address of an lvalue expression; null + diagnostic when not an lvalue.
  ExprVal genLValue(Expr &E);
  Value *toBool(ExprVal EV, SourceLoc Loc);
  /// Implicit conversion; null + diagnostic when impossible.
  Value *convert(ExprVal EV, Type *To, SourceLoc Loc);
  /// Conversion cost for overloading: 0 exact, >0 worse, -1 impossible.
  int conversionCost(Type *From, Type *To) const;

  ExprVal genBinary(BinaryExpr &E);
  ExprVal genShortCircuit(BinaryExpr &E);
  ExprVal genUnary(UnaryExpr &E);
  ExprVal genAssign(AssignExpr &E);
  ExprVal genConditional(ConditionalExpr &E);
  ExprVal genNameRef(NameRefExpr &E);
  ExprVal genMember(MemberExpr &E);
  ExprVal genIndex(IndexExpr &E);
  ExprVal genCallExpr(CallExpr &E);
  ExprVal genMethodCall(MethodCallExpr &E);
  ExprVal genCast(CastExpr &E);

  /// Arithmetic conversion of two scalar operands to a common type.
  bool unifyArithmetic(ExprVal &L, ExprVal &R, SourceLoc Loc);

  std::optional<IntrinsicId> builtinFor(const std::string &Name,
                                        size_t NumArgs) const;
  ExprVal genIntrinsic(IntrinsicId Id, std::vector<ExprPtr> &Args,
                       SourceLoc Loc);

  /// Overload resolution over \p Candidates for semantic arg types; -1 on
  /// failure. \p ArgTypes excludes `this`.
  int resolveOverload(const std::vector<FnLowering *> &Candidates,
                      const std::vector<Type *> &ArgTypes, SourceLoc Loc,
                      const std::string &What);

  /// Emits the call (direct or virtual) with lowering applied.
  ExprVal emitCall(FnLowering &L, Value *ThisPtr,
                   std::vector<ExprVal> &ArgVals, bool AllowVirtual,
                   SourceLoc Loc);

  /// Adjusts \p Ptr (pointer to From) to point at its To base subobject.
  Value *upcastPointer(Value *Ptr, ClassType *From, const ClassType *To,
                       SourceLoc Loc);

  /// Decays array lvalues to element pointers; loads scalar fields; leaves
  /// class aggregates as addresses.
  ExprVal decay(ExprVal EV);

  Value *ptrAdd(Value *Ptr, int64_t Bytes, Type *ResultPointee);

  // Scopes.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  LocalVar *findLocal(const std::string &Name);
  void defineLocal(const std::string &Name, LocalVar LV) {
    Scopes.back()[Name] = LV;
  }

  BasicBlock *newBlock(const std::string &Name) {
    return CurFn->createBlock(Name);
  }
  /// True when the current insertion block already has a terminator.
  bool blockClosed() {
    return B.insertBlock() && B.insertBlock()->terminator() != nullptr;
  }

  TranslationUnit &Unit;
  Module &M;
  DiagnosticEngine &Diags;
  IRBuilder B;

  std::map<std::string, ClassDecl *> ClassDeclByName;
  std::map<const ClassDecl *, ClassType *> ClassTypeOf;
  std::map<const ClassType *, ClassDecl *> DeclOfClass;

  /// All lowered functions (methods, free functions, thunks).
  std::vector<std::unique_ptr<FnLowering>> Lowerings;
  std::map<Function *, FnLowering *> LoweringOf;
  /// Methods per class, in declaration order.
  std::map<const ClassType *, std::vector<FnLowering *>> MethodsOf;
  /// Free functions by qualified name.
  std::map<std::string, std::vector<FnLowering *>> FreeFns;

  // Per-body state.
  Function *CurFn = nullptr;
  FnLowering *CurLowering = nullptr;
  ClassType *CurClass = nullptr;
  Value *CurThis = nullptr;
  Value *CurSRet = nullptr;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  struct LoopTargets {
    BasicBlock *Continue;
    BasicBlock *Break;
  };
  std::vector<LoopTargets> LoopStack;
};

//===----------------------------------------------------------------------===//
// Declaration registration
//===----------------------------------------------------------------------===//

bool IRGenerator::run() {
  if (!registerClasses())
    return false;
  if (!createFunctions())
    return false;
  finalizeVTables();
  if (!generateBodies())
    return false;
  checkRecursion();
  return !Diags.hasError();
}

bool IRGenerator::registerClasses() {
  // Shell pass so pointers to later classes resolve.
  for (auto &CD : Unit.Classes) {
    if (ClassDeclByName.count(CD->Name)) {
      Diags.error(CD->Loc, "duplicate class '" + CD->Name + "'");
      continue;
    }
    ClassDeclByName[CD->Name] = CD.get();
    ClassType *CT = M.types().createClass(CD->Name);
    ClassTypeOf[CD.get()] = CT;
    DeclOfClass[CT] = CD.get();
  }
  // Layout pass in declaration order (bases must precede derived classes).
  for (auto &CD : Unit.Classes)
    if (!layoutClass(*CD))
      return false;
  return !Diags.hasError();
}

bool IRGenerator::layoutClass(ClassDecl &CD) {
  ClassType *CT = ClassTypeOf[&CD];

  for (const std::string &BaseName : CD.BaseNames) {
    ClassType *Base = lookupClass(BaseName, CD.Loc, /*Required=*/true);
    if (!Base)
      continue;
    if (!Base->isLaidOut()) {
      Diags.error(CD.Loc, "base class '" + BaseName +
                              "' must be defined before '" + CD.Name + "'");
      continue;
    }
    CT->addBase(Base);
  }

  // Virtual methods: explicitly `virtual` ones, plus implicit overrides of
  // base-class virtual slots (C++ semantics).
  for (auto &MD : CD.Methods) {
    std::vector<Type *> ParamTys;
    bool Bad = false;
    for (ParamDecl &P : MD->Params) {
      bool IsRef = false;
      Type *T = resolveType(P.Type, &IsRef);
      if (!T) {
        Bad = true;
        continue;
      }
      // Slot signatures use the *semantic* types so override matching works.
      ParamTys.push_back(IsRef ? M.types().pointerTo(T) : T);
    }
    if (Bad)
      continue;
    Type *Ret = resolveType(MD->ReturnType);
    if (!Ret)
      continue;
    FunctionType *Sig = M.types().functionTy(Ret, ParamTys);

    bool IsVirtual = MD->IsVirtual || MD->IsPure;
    if (!IsVirtual) {
      for (const BaseInfo &BI : CT->bases()) {
        unsigned G, S;
        if (BI.Base->findVirtualSlot(MD->Name, Sig, &G, &S)) {
          IsVirtual = true;
          break;
        }
      }
    }
    MD->IsVirtual = IsVirtual;
    if (IsVirtual)
      CT->addVirtualMethod(MD->Name, Sig);
  }

  for (FieldDecl &FD : CD.Fields) {
    bool IsRef = false;
    Type *T = resolveType(FD.Type, &IsRef);
    if (!T)
      continue;
    if (IsRef) {
      Diags.error(FD.Loc, "reference fields are not supported");
      continue;
    }
    if (FD.Type.ArrayLen >= 0)
      T = M.types().arrayOf(T, uint64_t(FD.Type.ArrayLen));
    if (auto *FieldClass = dyn_cast<ClassType>(T))
      if (!FieldClass->isLaidOut()) {
        Diags.error(FD.Loc, "class '" + FieldClass->name() +
                                "' used by value before its definition");
        continue;
      }
    CT->addField(FD.Name, T);
  }

  CT->finalizeLayout();
  return true;
}

FnLowering IRGenerator::lowerSignature(FunctionDecl &FD,
                                       ClassType *ThisClass) {
  FnLowering L;
  L.Decl = &FD;
  L.ThisClass = ThisClass;
  L.IsVirtual = FD.IsVirtual;

  L.RetSem = resolveType(FD.ReturnType);
  if (!L.RetSem)
    L.RetSem = M.types().voidTy();
  L.HasSRet = L.RetSem->isClass();

  std::vector<Type *> LoweredParams;
  std::vector<Type *> SigParams;
  if (ThisClass)
    LoweredParams.push_back(M.types().pointerTo(ThisClass));
  if (L.HasSRet)
    LoweredParams.push_back(M.types().pointerTo(L.RetSem));

  for (ParamDecl &P : FD.Params) {
    bool IsRef = false;
    Type *T = resolveType(P.Type, &IsRef);
    if (!T)
      T = M.types().int32Ty();
    L.ParamSem.push_back(T);
    L.ParamIsRef.push_back(IsRef);
    bool ByVal = !IsRef && T->isClass();
    L.ParamIsByValClass.push_back(ByVal);
    Type *Lowered = (IsRef || ByVal) ? M.types().pointerTo(T) : T;
    LoweredParams.push_back(Lowered);
    SigParams.push_back(IsRef ? M.types().pointerTo(T) : T);
  }

  Type *LoweredRet = L.HasSRet ? M.types().voidTy() : L.RetSem;
  FunctionType *FTy = M.types().functionTy(LoweredRet, LoweredParams);

  std::string Mangled;
  if (ThisClass)
    Mangled = ThisClass->name() + "::" + FD.Name;
  else
    Mangled = FD.Name;
  Mangled += "(";
  for (size_t I = 0; I < L.ParamSem.size(); ++I) {
    if (I)
      Mangled += ",";
    Mangled += L.ParamSem[I]->str();
    if (L.ParamIsRef[I])
      Mangled += "&";
  }
  Mangled += ")";

  if (Function *Existing = M.findFunction(Mangled)) {
    // Forward declaration + definition pair: bind the definition to the
    // already-created function. Anything else is a redefinition.
    FnLowering *Prev =
        LoweringOf.count(Existing) ? LoweringOf[Existing] : nullptr;
    if (Prev && !Prev->Decl->Body && FD.Body) {
      Prev->Decl = &FD;
      L.Fn = nullptr; // Merged into the previous lowering.
      return L;
    }
    if (Prev && Prev->Decl->Body && !FD.Body) {
      L.Fn = nullptr; // Redundant trailing declaration.
      return L;
    }
    Diags.error(FD.Loc, "redefinition of '" + Mangled + "'");
    Mangled += "$dup" + std::to_string(Lowerings.size());
  }
  L.Fn = M.createFunction(Mangled, FTy);
  L.Fn->setMethodOf(ThisClass);
  L.VirtualSig = M.types().functionTy(L.RetSem, SigParams);
  return L;
}

bool IRGenerator::createFunctions() {
  for (auto &CD : Unit.Classes) {
    ClassType *CT = ClassTypeOf[CD.get()];
    for (auto &MD : CD->Methods) {
      auto L = std::make_unique<FnLowering>(lowerSignature(*MD, CT));
      if (!L->Fn)
        continue; // Declaration merged with its definition.
      LoweringOf[L->Fn] = L.get();
      MethodsOf[CT].push_back(L.get());
      Lowerings.push_back(std::move(L));
    }
  }
  for (size_t I = 0; I < Unit.Functions.size(); ++I) {
    FunctionDecl &FD = *Unit.Functions[I];
    // Free functions get their qualified name mangled in.
    std::string Saved = FD.Name;
    FD.Name = Unit.FunctionQualNames[I];
    auto L = std::make_unique<FnLowering>(lowerSignature(FD, nullptr));
    FD.Name = Saved;
    if (!L->Fn)
      continue; // Declaration merged with its definition.
    LoweringOf[L->Fn] = L.get();
    FreeFns[Unit.FunctionQualNames[I]].push_back(L.get());
    Lowerings.push_back(std::move(L));
  }
  return !Diags.hasError();
}

void IRGenerator::finalizeVTables() {
  // Declaration order guarantees base classes are finalized first.
  for (auto &CD : Unit.Classes) {
    ClassType *CT = ClassTypeOf[CD.get()];
    for (VTableGroup &G : CT->vtablesMutable()) {
      for (size_t S = 0; S < G.Slots.size(); ++S) {
        VTableSlot &Slot = G.Slots[S];
        // Own override?
        FnLowering *Own = nullptr;
        for (FnLowering *ML : MethodsOf[CT]) {
          if (ML->Decl->Name == Slot.Name && ML->VirtualSig == Slot.Signature) {
            Own = ML;
            break;
          }
        }
        if (Own) {
          if (Own->Decl->IsPure) {
            Slot.Impl = nullptr; // Abstract: no dispatch target here.
            continue;
          }
          Slot.Impl = G.Offset == 0 ? Own->Fn
                                    : createThunk(Own->Fn, CT, G.Offset);
          continue;
        }
        // Inherit from the base subobject the group belongs to.
        Function *Inherited = nullptr;
        for (const BaseInfo &BI : CT->bases()) {
          for (const VTableGroup &BG : BI.Base->vtables()) {
            if (BI.Offset + BG.Offset != G.Offset || S >= BG.Slots.size())
              continue;
            const VTableSlot &BS = BG.Slots[S];
            if (BS.Name == Slot.Name && BS.Signature == Slot.Signature)
              Inherited = BS.Impl;
          }
        }
        Slot.Impl = Inherited;
      }
    }
  }
}

Function *IRGenerator::createThunk(Function *Impl, ClassType *C,
                                   uint64_t Offset) {
  std::string Name =
      Impl->name() + "$thunk" + std::to_string(Offset);
  if (Function *Existing = M.findFunction(Name))
    return Existing;
  Function *Thunk = M.createFunction(Name, Impl->functionType());
  Thunk->setThunk(true);
  Thunk->setMethodOf(C);

  BasicBlock *Entry = Thunk->createBlock("entry");
  IRBuilder TB(M);
  TB.setInsertAtEnd(Entry);
  // Adjust this from the secondary subobject back to the complete object.
  Value *This = Thunk->arg(0);
  Value *AsInt = TB.createCast(CastKind::PtrToInt, This,
                               M.types().uint64Ty(), "this.int");
  Value *Adj = TB.createBinOp(Opcode::Sub, AsInt, M.constU64(Offset),
                              "this.adj");
  Value *NewThis = TB.createCast(CastKind::IntToPtr, Adj, This->type(),
                                 "this.fix");
  std::vector<Value *> Args{NewThis};
  for (unsigned I = 1; I < Thunk->numArgs(); ++I)
    Args.push_back(Thunk->arg(I));
  Instruction *CallI = TB.createCall(Impl, Args);
  if (Impl->returnType()->isVoid())
    TB.createRet();
  else
    TB.createRet(CallI);
  return Thunk;
}

void IRGenerator::checkRecursion() {
  analysis::CallGraph CG(M);
  for (Function *F : CG.recursiveFunctions()) {
    // Tail recursion is allowed; TailRecursionElim removes it.
    bool SelfOnly = CG.callees(F).count(F) != 0;
    if (SelfOnly && analysis::CallGraph::isSelfRecursionTailOnly(*F))
      continue;
    SourceLoc Loc;
    if (FnLowering *L = LoweringOf.count(F) ? LoweringOf[F] : nullptr)
      Loc = L->Decl->Loc;
    Diags.unsupported(Loc, "recursion in kernel code ('" + F->name() +
                               "'); only eliminable tail recursion is "
                               "supported on the GPU");
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Type *IRGenerator::builtinType(BuiltinKind K) {
  TypeContext &T = M.types();
  switch (K) {
  case BuiltinKind::Void: return T.voidTy();
  case BuiltinKind::Bool: return T.boolTy();
  case BuiltinKind::Char: return T.int8Ty();
  case BuiltinKind::UChar: return T.uint8Ty();
  case BuiltinKind::Short: return T.int16Ty();
  case BuiltinKind::UShort: return T.uint16Ty();
  case BuiltinKind::Int: return T.int32Ty();
  case BuiltinKind::UInt: return T.uint32Ty();
  case BuiltinKind::Long: return T.int64Ty();
  case BuiltinKind::ULong: return T.uint64Ty();
  case BuiltinKind::Float: return T.floatTy();
  case BuiltinKind::Named: break;
  }
  return nullptr;
}

ClassType *IRGenerator::lookupClass(const std::string &Name, SourceLoc Loc,
                                    bool Required) {
  if (ClassType *CT = M.types().findClass(Name))
    return CT;
  // Unique-suffix match lets unqualified names find namespaced classes.
  ClassType *Found = nullptr;
  for (ClassType *CT : M.types().classes()) {
    const std::string &Full = CT->name();
    if (Full.size() > Name.size() + 2 &&
        Full.compare(Full.size() - Name.size(), Name.size(), Name) == 0 &&
        Full[Full.size() - Name.size() - 1] == ':') {
      if (Found) {
        Diags.error(Loc, "ambiguous class name '" + Name + "'");
        return nullptr;
      }
      Found = CT;
    }
  }
  if (!Found && Required)
    Diags.error(Loc, "unknown class '" + Name + "'");
  return Found;
}

Type *IRGenerator::resolveType(const TypeSyntax &TS, bool *IsRef) {
  if (IsRef)
    *IsRef = TS.IsRef;
  Type *T = nullptr;
  if (TS.Base == BuiltinKind::Named)
    T = lookupClass(TS.Name, TS.Loc, /*Required=*/true);
  else
    T = builtinType(TS.Base);
  if (!T)
    return nullptr;
  if (T->isVoid() && TS.PtrDepth > 0) {
    Diags.error(TS.Loc, "void* is not supported; use ulong");
    return nullptr;
  }
  for (unsigned I = 0; I < TS.PtrDepth; ++I)
    T = M.types().pointerTo(T);
  return T;
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

bool IRGenerator::generateBodies() {
  for (auto &L : Lowerings) {
    if (!L->Decl->Body) {
      if (!L->Fn->isThunk() && !L->Decl->IsPure)
        Diags.error(L->Decl->Loc,
                    "function '" + L->Fn->name() + "' has no body");
      continue;
    }
    CurFn = L->Fn;
    CurLowering = L.get();
    CurClass = L->ThisClass;
    CurThis = nullptr;
    CurSRet = nullptr;

    BasicBlock *Entry = CurFn->createBlock("entry");
    B.setInsertAtEnd(Entry);
    pushScope();

    unsigned ArgIdx = 0;
    if (CurClass)
      CurThis = CurFn->arg(ArgIdx++);
    if (L->HasSRet)
      CurSRet = CurFn->arg(ArgIdx++);

    for (size_t P = 0; P < L->Decl->Params.size(); ++P, ++ArgIdx) {
      ParamDecl &PD = L->Decl->Params[P];
      Argument *Arg = CurFn->arg(ArgIdx);
      LocalVar LV;
      LV.SemType = L->ParamSem[P];
      if (L->ParamIsRef[P] || L->ParamIsByValClass[P]) {
        // The argument is already an address of the semantic object.
        LV.Addr = Arg;
        LV.IsAlloca = false;
      } else {
        Instruction *Slot = B.createAlloca(LV.SemType, PD.Name + ".addr");
        B.createStore(Arg, Slot);
        LV.Addr = Slot;
        LV.IsAlloca = false; // Parameters may have their address taken.
      }
      if (!PD.Name.empty())
        defineLocal(PD.Name, LV);
    }

    genStmt(*L->Decl->Body);

    // Implicit return at the end of a void function (or missing return).
    if (!blockClosed()) {
      if (L->HasSRet || L->RetSem->isVoid())
        B.createRet();
      else if (L->RetSem->isScalar())
        B.createRet(L->RetSem->isFloat()
                        ? static_cast<Value *>(M.constFloat(0.0f))
                        : L->RetSem->isPointer()
                              ? static_cast<Value *>(M.nullPtr(
                                    cast<PointerType>(L->RetSem)))
                              : static_cast<Value *>(M.constInt(L->RetSem, 0)));
      else
        B.createRet();
    }
    popScope();
    assert(Scopes.empty() && "scope imbalance");
  }
  return !Diags.hasError();
}

LocalVar *IRGenerator::findLocal(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

void IRGenerator::genStmt(Stmt &S) {
  if (blockClosed()) {
    // Unreachable code after return/break: emit into a fresh dead block so
    // IR stays well-formed; DCE removes it.
    BasicBlock *Dead = newBlock("dead");
    B.setInsertAtEnd(Dead);
  }
  switch (S.Kind) {
  case StmtKind::Compound:
    genCompound(*cast<CompoundStmt>(&S));
    return;
  case StmtKind::Expr:
    genExpr(*cast<ExprStmt>(&S)->E);
    return;
  case StmtKind::Decl: {
    auto *DS = cast<DeclStmt>(&S);
    bool IsRef = false;
    Type *T = resolveType(DS->Type, &IsRef);
    if (!T)
      return;
    if (IsRef) {
      Diags.error(DS->Loc, "local references are not supported");
      return;
    }
    Type *StoreTy = T;
    if (DS->Type.ArrayLen >= 0)
      StoreTy = M.types().arrayOf(T, uint64_t(DS->Type.ArrayLen));
    Instruction *Slot = B.createAlloca(StoreTy, DS->Name);
    LocalVar LV{Slot, StoreTy, /*IsAlloca=*/true};
    defineLocal(DS->Name, LV);
    if (DS->Init) {
      ExprVal Init = genExpr(*DS->Init);
      if (!Init.valid())
        return;
      if (StoreTy->isClass()) {
        if (!Init.IsAddr || Init.SemType != StoreTy) {
          Diags.error(DS->Loc, "cannot initialize '" + StoreTy->str() +
                                   "' from '" +
                                   (Init.SemType ? Init.SemType->str() : "?") +
                                   "'");
          return;
        }
        B.createMemcpy(Slot, Init.V, StoreTy->sizeInBytes());
      } else {
        if (Value *V = convert(Init, T, DS->Loc))
          B.createStore(V, Slot);
      }
    }
    return;
  }
  case StmtKind::If: {
    auto *IS = cast<IfStmt>(&S);
    Value *Cond = toBool(genExpr(*IS->Cond), IS->Loc);
    if (!Cond)
      return;
    BasicBlock *ThenBB = newBlock("if.then");
    BasicBlock *ElseBB = IS->Else ? newBlock("if.else") : nullptr;
    BasicBlock *EndBB = newBlock("if.end");
    B.createCondBr(Cond, ThenBB, ElseBB ? ElseBB : EndBB);
    B.setInsertAtEnd(ThenBB);
    genStmt(*IS->Then);
    if (!blockClosed())
      B.createBr(EndBB);
    if (ElseBB) {
      B.setInsertAtEnd(ElseBB);
      genStmt(*IS->Else);
      if (!blockClosed())
        B.createBr(EndBB);
    }
    B.setInsertAtEnd(EndBB);
    return;
  }
  case StmtKind::While: {
    auto *WS = cast<WhileStmt>(&S);
    BasicBlock *HeaderBB = newBlock("while.cond");
    BasicBlock *BodyBB = newBlock("while.body");
    BasicBlock *EndBB = newBlock("while.end");
    B.createBr(HeaderBB);
    B.setInsertAtEnd(HeaderBB);
    Value *Cond = toBool(genExpr(*WS->Cond), WS->Loc);
    if (!Cond)
      return;
    B.createCondBr(Cond, BodyBB, EndBB);
    B.setInsertAtEnd(BodyBB);
    LoopStack.push_back({HeaderBB, EndBB});
    genStmt(*WS->Body);
    LoopStack.pop_back();
    if (!blockClosed())
      B.createBr(HeaderBB);
    B.setInsertAtEnd(EndBB);
    return;
  }
  case StmtKind::For: {
    auto *FS = cast<ForStmt>(&S);
    pushScope();
    if (FS->Init)
      genStmt(*FS->Init);
    BasicBlock *HeaderBB = newBlock("for.cond");
    BasicBlock *BodyBB = newBlock("for.body");
    BasicBlock *StepBB = newBlock("for.step");
    BasicBlock *EndBB = newBlock("for.end");
    B.createBr(HeaderBB);
    B.setInsertAtEnd(HeaderBB);
    if (FS->Cond) {
      Value *Cond = toBool(genExpr(*FS->Cond), FS->Loc);
      if (!Cond) {
        popScope();
        return;
      }
      B.createCondBr(Cond, BodyBB, EndBB);
    } else {
      B.createBr(BodyBB);
    }
    B.setInsertAtEnd(BodyBB);
    LoopStack.push_back({StepBB, EndBB});
    genStmt(*FS->Body);
    LoopStack.pop_back();
    if (!blockClosed())
      B.createBr(StepBB);
    B.setInsertAtEnd(StepBB);
    if (FS->Step)
      genExpr(*FS->Step);
    B.createBr(HeaderBB);
    B.setInsertAtEnd(EndBB);
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *RS = cast<ReturnStmt>(&S);
    if (CurLowering->HasSRet) {
      if (!RS->Value) {
        Diags.error(RS->Loc, "return without a value");
        return;
      }
      ExprVal V = genExpr(*RS->Value);
      if (!V.valid())
        return;
      if (!V.IsAddr || V.SemType != CurLowering->RetSem) {
        Diags.error(RS->Loc, "return type mismatch");
        return;
      }
      B.createMemcpy(CurSRet, V.V, CurLowering->RetSem->sizeInBytes());
      B.createRet();
      return;
    }
    if (CurLowering->RetSem->isVoid()) {
      if (RS->Value)
        Diags.error(RS->Loc, "void function returning a value");
      B.createRet();
      return;
    }
    if (!RS->Value) {
      Diags.error(RS->Loc, "return without a value");
      return;
    }
    ExprVal V = genExpr(*RS->Value);
    if (!V.valid())
      return;
    if (Value *Conv = convert(V, CurLowering->RetSem, RS->Loc))
      B.createRet(Conv);
    return;
  }
  case StmtKind::Break:
    if (LoopStack.empty())
      Diags.error(S.Loc, "'break' outside of a loop");
    else
      B.createBr(LoopStack.back().Break);
    return;
  case StmtKind::Continue:
    if (LoopStack.empty())
      Diags.error(S.Loc, "'continue' outside of a loop");
    else
      B.createBr(LoopStack.back().Continue);
    return;
  }
}

void IRGenerator::genCompound(CompoundStmt &S) {
  pushScope();
  for (StmtPtr &Sub : S.Body)
    genStmt(*Sub);
  popScope();
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

Value *IRGenerator::toBool(ExprVal EV, SourceLoc Loc) {
  if (!EV.valid())
    return nullptr;
  EV = decay(EV);
  Type *T = EV.SemType;
  if (T->isBool())
    return EV.V;
  B.setLoc(Loc);
  if (T->isInteger())
    return B.createICmp(ICmpPred::NE, EV.V, M.constInt(T, 0));
  if (T->isFloat())
    return B.createFCmp(FCmpPred::ONE, EV.V, M.constFloat(0.0f));
  if (T->isPointer())
    return B.createICmp(ICmpPred::NE, EV.V,
                        M.nullPtr(cast<PointerType>(T)));
  Diags.error(Loc, "value of type '" + T->str() + "' is not a condition");
  return nullptr;
}

int IRGenerator::conversionCost(Type *From, Type *To) const {
  if (From == To)
    return 0;
  if (From->isInteger() && To->isInteger()) {
    if (From->isBool())
      return 1;
    uint64_t FW = From->sizeInBytes(), TW = To->sizeInBytes();
    if (TW > FW)
      return 1; // Widening.
    if (TW == FW)
      return 2; // Sign reinterpretation.
    return 3;   // Narrowing (implicit, as in C++).
  }
  if (From->isInteger() && To->isFloat())
    return 2;
  if (From->isPointer() && To->isPointer()) {
    auto *FP = cast<PointerType>(From)->pointee();
    auto *TP = cast<PointerType>(To)->pointee();
    if (auto *FC = dyn_cast<ClassType>(FP))
      if (auto *TC = dyn_cast<ClassType>(TP))
        if (FC->isBaseOrSelf(TC))
          return 1; // Derived* -> Base*.
    return -1;
  }
  return -1;
}

Value *IRGenerator::convert(ExprVal EV, Type *To, SourceLoc Loc) {
  if (!EV.valid())
    return nullptr;
  EV = decay(EV);
  Type *From = EV.SemType;
  if (From == To)
    return EV.V;
  B.setLoc(Loc);

  // Null literal.
  if (isa<ConstantNull>(EV.V) && To->isPointer())
    return M.nullPtr(cast<PointerType>(To));

  if (From->isInteger() && To->isInteger()) {
    uint64_t FW = From->sizeInBytes(), TW = To->sizeInBytes();
    if (auto *CI = dyn_cast<ConstantInt>(EV.V))
      return M.constInt(To, uint64_t(CI->sext()));
    if (TW > FW)
      return B.createCast(From->isSignedInteger() ? CastKind::SExt
                                                  : CastKind::ZExt,
                          EV.V, To);
    if (TW < FW)
      return B.createCast(CastKind::Trunc, EV.V, To);
    return B.createCast(CastKind::BitCast, EV.V, To);
  }
  if (From->isInteger() && To->isFloat()) {
    if (auto *CI = dyn_cast<ConstantInt>(EV.V))
      return M.constFloat(float(CI->sext()));
    return B.createCast(From->isUnsignedInteger() ? CastKind::UIToFP
                                                  : CastKind::SIToFP,
                        EV.V, To);
  }
  if (From->isPointer() && To->isPointer()) {
    auto *FC = dyn_cast<ClassType>(cast<PointerType>(From)->pointee());
    auto *TC = dyn_cast<ClassType>(cast<PointerType>(To)->pointee());
    if (FC && TC && FC->isBaseOrSelf(TC))
      return upcastPointer(EV.V, FC, TC, Loc);
  }
  Diags.error(Loc, "no implicit conversion from '" + From->str() + "' to '" +
                       To->str() + "'");
  return nullptr;
}

Value *IRGenerator::upcastPointer(Value *Ptr, ClassType *From,
                                  const ClassType *To, SourceLoc Loc) {
  uint64_t Off = 0;
  bool OK = From->offsetOfBase(To, &Off);
  assert(OK && "upcast to a non-base");
  (void)OK;
  Type *ToPtr = M.types().pointerTo(const_cast<ClassType *>(To));
  B.setLoc(Loc);
  if (Off == 0)
    return B.createCast(CastKind::BitCast, Ptr, ToPtr);
  return ptrAdd(Ptr, int64_t(Off),
                const_cast<ClassType *>(To));
}

Value *IRGenerator::ptrAdd(Value *Ptr, int64_t Bytes, Type *ResultPointee) {
  // FieldAddr with a byte offset reinterprets the pointee.
  return B.createFieldAddr(Ptr, uint64_t(Bytes), ResultPointee);
}

ExprVal IRGenerator::decay(ExprVal EV) {
  if (!EV.valid() || !EV.IsAddr)
    return EV;
  if (auto *AT = dyn_cast<ArrayType>(EV.SemType)) {
    // Array-to-pointer decay.
    Value *ElemPtr = B.createCast(CastKind::BitCast, EV.V,
                                  M.types().pointerTo(AT->element()));
    return {ElemPtr, M.types().pointerTo(AT->element()), false};
  }
  if (EV.SemType->isClass())
    return EV; // Aggregates stay as addresses.
  Value *Loaded = B.createLoad(EV.V);
  return {Loaded, EV.SemType, false};
}

bool IRGenerator::unifyArithmetic(ExprVal &L, ExprVal &R, SourceLoc Loc) {
  L = decay(L);
  R = decay(R);
  if (!L.valid() || !R.valid())
    return false;
  Type *LT = L.SemType, *RT = R.SemType;
  if (!LT->isScalar() || !RT->isScalar()) {
    Diags.error(Loc, "invalid operands to arithmetic");
    return false;
  }
  Type *Common = nullptr;
  if (LT == RT)
    return true;
  if (LT->isFloat() || RT->isFloat())
    Common = M.types().floatTy();
  else if (LT->isInteger() && RT->isInteger()) {
    uint64_t W = std::max(LT->sizeInBytes(), RT->sizeInBytes());
    W = std::max<uint64_t>(W, 4); // Integer promotion to at least 32 bits.
    bool Unsigned = (LT->isUnsignedInteger() && LT->sizeInBytes() >= W) ||
                    (RT->isUnsignedInteger() && RT->sizeInBytes() >= W);
    TypeContext &T = M.types();
    Common = W == 4 ? (Unsigned ? T.uint32Ty() : T.int32Ty())
                    : (Unsigned ? T.uint64Ty() : T.int64Ty());
  } else {
    Diags.error(Loc, "invalid operand types '" + LT->str() + "' and '" +
                         RT->str() + "'");
    return false;
  }
  Value *LV = convert(L, Common, Loc);
  Value *RV = convert(R, Common, Loc);
  if (!LV || !RV)
    return false;
  L = {LV, Common, false};
  R = {RV, Common, false};
  return true;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprVal IRGenerator::genExpr(Expr &E) {
  B.setLoc(E.Loc);
  switch (E.Kind) {
  case ExprKind::IntLit: {
    auto *IL = cast<IntLitExpr>(&E);
    Type *T = IL->Value > 0x7fffffffull ? M.types().int64Ty()
                                        : M.types().int32Ty();
    return {M.constInt(T, IL->Value), T, false};
  }
  case ExprKind::FloatLit:
    return {M.constFloat(float(cast<FloatLitExpr>(&E)->Value)),
            M.types().floatTy(), false};
  case ExprKind::BoolLit:
    return {M.constBool(cast<BoolLitExpr>(&E)->Value), M.types().boolTy(),
            false};
  case ExprKind::NullLit: {
    PointerType *PT = M.types().pointerTo(M.types().int8Ty());
    return {M.nullPtr(PT), PT, false};
  }
  case ExprKind::This: {
    if (!CurThis) {
      Diags.error(E.Loc, "'this' outside of a method");
      return {};
    }
    return {CurThis, CurThis->type(), false};
  }
  case ExprKind::NameRef:
    return decay(genNameRef(*cast<NameRefExpr>(&E)));
  case ExprKind::Member:
    return decay(genMember(*cast<MemberExpr>(&E)));
  case ExprKind::Index:
    return decay(genIndex(*cast<IndexExpr>(&E)));
  case ExprKind::Call:
    return genCallExpr(*cast<CallExpr>(&E));
  case ExprKind::MethodCall:
    return genMethodCall(*cast<MethodCallExpr>(&E));
  case ExprKind::Unary:
    return genUnary(*cast<UnaryExpr>(&E));
  case ExprKind::Binary:
    return genBinary(*cast<BinaryExpr>(&E));
  case ExprKind::Assign:
    return genAssign(*cast<AssignExpr>(&E));
  case ExprKind::Conditional:
    return genConditional(*cast<ConditionalExpr>(&E));
  case ExprKind::CastExpr:
    return genCast(*cast<CastExpr>(&E));
  }
  return {};
}

ExprVal IRGenerator::genLValue(Expr &E) {
  B.setLoc(E.Loc);
  switch (E.Kind) {
  case ExprKind::NameRef:
    return genNameRef(*cast<NameRefExpr>(&E));
  case ExprKind::Member:
    return genMember(*cast<MemberExpr>(&E));
  case ExprKind::Index:
    return genIndex(*cast<IndexExpr>(&E));
  case ExprKind::Unary: {
    auto *UE = cast<UnaryExpr>(&E);
    if (UE->Op == UnaryOp::Deref) {
      ExprVal P = genExpr(*UE->Sub);
      if (!P.valid())
        return {};
      if (!P.SemType->isPointer()) {
        Diags.error(E.Loc, "dereferencing a non-pointer");
        return {};
      }
      return {P.V, cast<PointerType>(P.SemType)->pointee(), true};
    }
    break;
  }
  case ExprKind::MethodCall: {
    // Calls returning class values produce addressable temporaries.
    ExprVal R = genMethodCall(*cast<MethodCallExpr>(&E));
    if (R.valid() && R.IsAddr)
      return R;
    break;
  }
  case ExprKind::Call: {
    ExprVal R = genCallExpr(*cast<CallExpr>(&E));
    if (R.valid() && R.IsAddr)
      return R;
    break;
  }
  default:
    break;
  }
  Diags.error(E.Loc, "expression is not assignable");
  return {};
}

ExprVal IRGenerator::genNameRef(NameRefExpr &E) {
  if (E.Path.size() == 1) {
    if (LocalVar *LV = findLocal(E.Path[0]))
      return {LV->Addr, LV->SemType, true};
    // Implicit this->field.
    if (CurClass) {
      uint64_t Off = 0;
      if (const FieldInfo *F = CurClass->findField(E.Path[0], &Off)) {
        Value *Addr = ptrAdd(CurThis, int64_t(Off), F->Ty);
        return {Addr, F->Ty, true};
      }
    }
  }
  // A bare function name: Concord does not support function pointers.
  std::string Joined;
  for (size_t I = 0; I < E.Path.size(); ++I)
    Joined += (I ? "::" : "") + E.Path[I];
  if (FreeFns.count(Joined)) {
    Diags.unsupported(E.Loc,
                      "taking the address of function '" + Joined +
                          "' (function pointers are not supported on GPU)");
    return {};
  }
  Diags.error(E.Loc, "unknown name '" + Joined + "'");
  return {};
}

ExprVal IRGenerator::genMember(MemberExpr &E) {
  ExprVal Base;
  ClassType *Class = nullptr;
  Value *ObjPtr = nullptr;
  if (E.IsArrow) {
    Base = genExpr(*E.Base);
    if (!Base.valid())
      return {};
    auto *PT = dyn_cast<PointerType>(Base.SemType);
    if (!PT || !PT->pointee()->isClass()) {
      Diags.error(E.Loc, "'->' on a non-class-pointer");
      return {};
    }
    Class = cast<ClassType>(PT->pointee());
    ObjPtr = Base.V;
  } else {
    Base = genLValue(*E.Base);
    if (!Base.valid())
      return {};
    if (!Base.SemType->isClass()) {
      Diags.error(E.Loc, "'.' on a non-class value");
      return {};
    }
    Class = cast<ClassType>(Base.SemType);
    ObjPtr = Base.V;
  }
  uint64_t Off = 0;
  const FieldInfo *F = Class->findField(E.Name, &Off);
  if (!F) {
    Diags.error(E.Loc,
                "class '" + Class->name() + "' has no field '" + E.Name + "'");
    return {};
  }
  Value *Addr = ptrAdd(ObjPtr, int64_t(Off), F->Ty);
  return {Addr, F->Ty, true};
}

ExprVal IRGenerator::genIndex(IndexExpr &E) {
  ExprVal Base = genExpr(*E.Base); // decay() turns arrays into pointers.
  if (!Base.valid())
    return {};
  if (!Base.SemType->isPointer()) {
    Diags.error(E.Loc, "subscript on a non-pointer");
    return {};
  }
  ExprVal Idx = genExpr(*E.Index);
  Value *IdxV = convert(Idx, M.types().int64Ty(), E.Loc);
  if (!IdxV)
    return {};
  Value *Addr = B.createIndexAddr(Base.V, IdxV);
  return {Addr, cast<PointerType>(Base.SemType)->pointee(), true};
}

ExprVal IRGenerator::genUnary(UnaryExpr &E) {
  switch (E.Op) {
  case UnaryOp::Neg: {
    ExprVal V = decay(genExpr(*E.Sub));
    if (!V.valid())
      return {};
    if (V.SemType->isFloat())
      return {B.createUnOp(Opcode::FNeg, V.V), V.SemType, false};
    if (V.SemType->isInteger()) {
      Type *T = V.SemType->sizeInBytes() < 4 ? M.types().int32Ty() : V.SemType;
      Value *C = convert(V, T, E.Loc);
      return {B.createUnOp(Opcode::Neg, C), T, false};
    }
    Diags.error(E.Loc, "invalid operand to unary '-'");
    return {};
  }
  case UnaryOp::Not: {
    Value *C = toBool(genExpr(*E.Sub), E.Loc);
    if (!C)
      return {};
    return {B.createUnOp(Opcode::Not, C), M.types().boolTy(), false};
  }
  case UnaryOp::BitNot: {
    ExprVal V = decay(genExpr(*E.Sub));
    if (!V.valid() || !V.SemType->isInteger()) {
      Diags.error(E.Loc, "invalid operand to '~'");
      return {};
    }
    Value *AllOnes = M.constInt(V.SemType, ~0ull);
    return {B.createBinOp(Opcode::Xor, V.V, AllOnes), V.SemType, false};
  }
  case UnaryOp::Deref: {
    ExprVal P = genExpr(*E.Sub);
    if (!P.valid())
      return {};
    if (!P.SemType->isPointer()) {
      Diags.error(E.Loc, "dereferencing a non-pointer");
      return {};
    }
    ExprVal LV{P.V, cast<PointerType>(P.SemType)->pointee(), true};
    return decay(LV);
  }
  case UnaryOp::AddrOf: {
    // Paper restriction (section 2.1): no address of a local variable.
    if (auto *NR = dyn_cast<NameRefExpr>(E.Sub.get()))
      if (NR->Path.size() == 1) {
        if (LocalVar *LV = findLocal(NR->Path[0]); LV && LV->IsAlloca) {
          Diags.unsupported(E.Loc, "taking the address of local variable '" +
                                       NR->Path[0] + "'");
          return {};
        }
      }
    ExprVal LV = genLValue(*E.Sub);
    if (!LV.valid())
      return {};
    Type *PT = M.types().pointerTo(LV.SemType);
    // The address computation already has pointer type with the right
    // pointee for FieldAddr/IndexAddr; re-type via bitcast when needed.
    Value *Addr = LV.V;
    if (Addr->type() != PT)
      Addr = B.createCast(CastKind::BitCast, Addr, PT);
    return {Addr, PT, false};
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    ExprVal LV = genLValue(*E.Sub);
    if (!LV.valid())
      return {};
    bool IsInc = E.Op == UnaryOp::PreInc || E.Op == UnaryOp::PostInc;
    bool IsPre = E.Op == UnaryOp::PreInc || E.Op == UnaryOp::PreDec;
    Value *Old = B.createLoad(LV.V);
    Value *New = nullptr;
    if (LV.SemType->isInteger()) {
      New = B.createBinOp(IsInc ? Opcode::Add : Opcode::Sub, Old,
                          M.constInt(LV.SemType, 1));
    } else if (LV.SemType->isFloat()) {
      New = B.createBinOp(IsInc ? Opcode::FAdd : Opcode::FSub, Old,
                          M.constFloat(1.0f));
    } else if (LV.SemType->isPointer()) {
      Value *Step = M.constInt(M.types().int64Ty(), IsInc ? 1 : uint64_t(-1));
      New = B.createIndexAddr(Old, Step);
    } else {
      Diags.error(E.Loc, "invalid operand to ++/--");
      return {};
    }
    B.createStore(New, LV.V);
    return {IsPre ? New : Old, LV.SemType, false};
  }
  }
  return {};
}

ExprVal IRGenerator::genBinary(BinaryExpr &E) {
  if (E.Op == BinaryOp::LAnd || E.Op == BinaryOp::LOr)
    return genShortCircuit(E);

  ExprVal L = genExpr(*E.LHS);
  ExprVal R = genExpr(*E.RHS);
  if (!L.valid() || !R.valid())
    return {};
  B.setLoc(E.Loc);

  // Operator overloading on class operands: a + b => a.operator+(b).
  if ((L.IsAddr && L.SemType->isClass()) ||
      (R.IsAddr && R.SemType->isClass())) {
    static const std::map<BinaryOp, std::string> OpNames = {
        {BinaryOp::Add, "operator+"}, {BinaryOp::Sub, "operator-"},
        {BinaryOp::Mul, "operator*"}, {BinaryOp::Div, "operator/"},
        {BinaryOp::EQ, "operator=="}, {BinaryOp::NE, "operator!="},
        {BinaryOp::LT, "operator<"},  {BinaryOp::GT, "operator>"},
    };
    auto It = OpNames.find(E.Op);
    if (It != OpNames.end() && L.IsAddr && L.SemType->isClass()) {
      auto *Class = cast<ClassType>(L.SemType);
      std::vector<FnLowering *> Candidates;
      for (FnLowering *ML : MethodsOf[Class])
        if (ML->Decl->Name == It->second)
          Candidates.push_back(ML);
      if (!Candidates.empty()) {
        std::vector<Type *> ArgTypes{R.SemType};
        int Best = resolveOverload(Candidates, ArgTypes, E.Loc, It->second);
        if (Best < 0)
          return {};
        std::vector<ExprVal> Args{R};
        return emitCall(*Candidates[size_t(Best)], L.V, Args,
                        /*AllowVirtual=*/true, E.Loc);
      }
    }
    Diags.error(E.Loc, "no matching operator overload");
    return {};
  }

  // Pointer arithmetic and comparisons.
  if (L.SemType->isPointer() || R.SemType->isPointer()) {
    switch (E.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      ExprVal P = L.SemType->isPointer() ? L : R;
      ExprVal I = L.SemType->isPointer() ? R : L;
      Value *Idx = convert(I, M.types().int64Ty(), E.Loc);
      if (!Idx)
        return {};
      if (E.Op == BinaryOp::Sub)
        Idx = B.createUnOp(Opcode::Neg, Idx);
      return {B.createIndexAddr(P.V, Idx), P.SemType, false};
    }
    case BinaryOp::EQ:
    case BinaryOp::NE:
    case BinaryOp::LT:
    case BinaryOp::LE:
    case BinaryOp::GT:
    case BinaryOp::GE: {
      // Unify null literals to the pointer type.
      Type *PT = L.SemType->isPointer() ? L.SemType : R.SemType;
      Value *LV = convert(L, PT, E.Loc);
      Value *RV = convert(R, PT, E.Loc);
      if (!LV || !RV)
        return {};
      static const std::map<BinaryOp, ICmpPred> Preds = {
          {BinaryOp::EQ, ICmpPred::EQ}, {BinaryOp::NE, ICmpPred::NE},
          {BinaryOp::LT, ICmpPred::ULT}, {BinaryOp::LE, ICmpPred::ULE},
          {BinaryOp::GT, ICmpPred::UGT}, {BinaryOp::GE, ICmpPred::UGE}};
      return {B.createICmp(Preds.at(E.Op), LV, RV), M.types().boolTy(),
              false};
    }
    default:
      Diags.error(E.Loc, "invalid pointer operation");
      return {};
    }
  }

  if (!unifyArithmetic(L, R, E.Loc))
    return {};
  Type *T = L.SemType;
  bool IsFloat = T->isFloat();
  bool IsUnsigned = T->isUnsignedInteger();

  auto Cmp = [&](ICmpPred SPred, ICmpPred UPred, FCmpPred FPred) -> ExprVal {
    if (IsFloat)
      return {B.createFCmp(FPred, L.V, R.V), M.types().boolTy(), false};
    return {B.createICmp(IsUnsigned ? UPred : SPred, L.V, R.V),
            M.types().boolTy(), false};
  };

  switch (E.Op) {
  case BinaryOp::Add:
    return {B.createBinOp(IsFloat ? Opcode::FAdd : Opcode::Add, L.V, R.V), T,
            false};
  case BinaryOp::Sub:
    return {B.createBinOp(IsFloat ? Opcode::FSub : Opcode::Sub, L.V, R.V), T,
            false};
  case BinaryOp::Mul:
    return {B.createBinOp(IsFloat ? Opcode::FMul : Opcode::Mul, L.V, R.V), T,
            false};
  case BinaryOp::Div:
    return {B.createBinOp(IsFloat  ? Opcode::FDiv
                          : IsUnsigned ? Opcode::UDiv
                                       : Opcode::SDiv,
                          L.V, R.V),
            T, false};
  case BinaryOp::Rem:
    if (IsFloat) {
      Diags.error(E.Loc, "'%' on floating point");
      return {};
    }
    return {B.createBinOp(IsUnsigned ? Opcode::URem : Opcode::SRem, L.V, R.V),
            T, false};
  case BinaryOp::And:
    return {B.createBinOp(Opcode::And, L.V, R.V), T, false};
  case BinaryOp::Or:
    return {B.createBinOp(Opcode::Or, L.V, R.V), T, false};
  case BinaryOp::Xor:
    return {B.createBinOp(Opcode::Xor, L.V, R.V), T, false};
  case BinaryOp::Shl:
    return {B.createBinOp(Opcode::Shl, L.V, R.V), T, false};
  case BinaryOp::Shr:
    return {B.createBinOp(IsUnsigned ? Opcode::LShr : Opcode::AShr, L.V, R.V),
            T, false};
  case BinaryOp::LT:
    return Cmp(ICmpPred::SLT, ICmpPred::ULT, FCmpPred::OLT);
  case BinaryOp::LE:
    return Cmp(ICmpPred::SLE, ICmpPred::ULE, FCmpPred::OLE);
  case BinaryOp::GT:
    return Cmp(ICmpPred::SGT, ICmpPred::UGT, FCmpPred::OGT);
  case BinaryOp::GE:
    return Cmp(ICmpPred::SGE, ICmpPred::UGE, FCmpPred::OGE);
  case BinaryOp::EQ:
    return Cmp(ICmpPred::EQ, ICmpPred::EQ, FCmpPred::OEQ);
  case BinaryOp::NE:
    return Cmp(ICmpPred::NE, ICmpPred::NE, FCmpPred::ONE);
  case BinaryOp::LAnd:
  case BinaryOp::LOr:
    break;
  }
  return {};
}

ExprVal IRGenerator::genShortCircuit(BinaryExpr &E) {
  bool IsAnd = E.Op == BinaryOp::LAnd;
  Value *L = toBool(genExpr(*E.LHS), E.Loc);
  if (!L)
    return {};
  BasicBlock *FromBB = B.insertBlock();
  BasicBlock *RhsBB = newBlock(IsAnd ? "land.rhs" : "lor.rhs");
  BasicBlock *EndBB = newBlock(IsAnd ? "land.end" : "lor.end");
  if (IsAnd)
    B.createCondBr(L, RhsBB, EndBB);
  else
    B.createCondBr(L, EndBB, RhsBB);
  B.setInsertAtEnd(RhsBB);
  Value *R = toBool(genExpr(*E.RHS), E.Loc);
  if (!R)
    return {};
  BasicBlock *RhsEndBB = B.insertBlock();
  B.createBr(EndBB);
  B.setInsertAtEnd(EndBB);
  Instruction *Phi = B.createPhi(M.types().boolTy());
  Phi->addIncoming(M.constBool(!IsAnd), FromBB);
  Phi->addIncoming(R, RhsEndBB);
  return {Phi, M.types().boolTy(), false};
}

ExprVal IRGenerator::genAssign(AssignExpr &E) {
  ExprVal LV = genLValue(*E.LHS);
  if (!LV.valid())
    return {};
  if (LV.SemType->isClass()) {
    if (E.IsCompound) {
      Diags.error(E.Loc, "compound assignment on class values");
      return {};
    }
    ExprVal RV = genExpr(*E.RHS);
    if (!RV.valid())
      return {};
    if (!RV.IsAddr || RV.SemType != LV.SemType) {
      Diags.error(E.Loc, "class assignment type mismatch");
      return {};
    }
    B.createMemcpy(LV.V, RV.V, LV.SemType->sizeInBytes());
    return LV;
  }

  Value *NewVal = nullptr;
  if (E.IsCompound) {
    ExprVal Old = decay(ExprVal{LV.V, LV.SemType, true});
    // Build the binary operation Old <op> RHS at the unified type, then
    // convert back to the destination type.
    BinaryExpr Synth(E.Op, nullptr, nullptr, E.Loc);
    ExprVal R = genExpr(*E.RHS);
    if (!R.valid())
      return {};
    ExprVal L = Old;
    if (LV.SemType->isPointer()) {
      if (E.Op != BinaryOp::Add && E.Op != BinaryOp::Sub) {
        Diags.error(E.Loc, "invalid pointer compound assignment");
        return {};
      }
      Value *Idx = convert(R, M.types().int64Ty(), E.Loc);
      if (!Idx)
        return {};
      if (E.Op == BinaryOp::Sub)
        Idx = B.createUnOp(Opcode::Neg, Idx);
      NewVal = B.createIndexAddr(L.V, Idx);
    } else {
      if (!unifyArithmetic(L, R, E.Loc))
        return {};
      Opcode Op;
      bool IsFloat = L.SemType->isFloat();
      bool IsUnsigned = L.SemType->isUnsignedInteger();
      switch (E.Op) {
      case BinaryOp::Add: Op = IsFloat ? Opcode::FAdd : Opcode::Add; break;
      case BinaryOp::Sub: Op = IsFloat ? Opcode::FSub : Opcode::Sub; break;
      case BinaryOp::Mul: Op = IsFloat ? Opcode::FMul : Opcode::Mul; break;
      case BinaryOp::Div:
        Op = IsFloat ? Opcode::FDiv : IsUnsigned ? Opcode::UDiv : Opcode::SDiv;
        break;
      case BinaryOp::Rem:
        Op = IsUnsigned ? Opcode::URem : Opcode::SRem;
        break;
      case BinaryOp::And: Op = Opcode::And; break;
      case BinaryOp::Or: Op = Opcode::Or; break;
      case BinaryOp::Xor: Op = Opcode::Xor; break;
      case BinaryOp::Shl: Op = Opcode::Shl; break;
      case BinaryOp::Shr: Op = IsUnsigned ? Opcode::LShr : Opcode::AShr; break;
      default:
        Diags.error(E.Loc, "invalid compound assignment");
        return {};
      }
      Value *Res = B.createBinOp(Op, L.V, R.V);
      NewVal = convert(ExprVal{Res, L.SemType, false}, LV.SemType, E.Loc);
    }
    (void)Synth;
  } else {
    ExprVal RV = genExpr(*E.RHS);
    NewVal = convert(RV, LV.SemType, E.Loc);
  }
  if (!NewVal)
    return {};
  B.createStore(NewVal, LV.V);
  return {NewVal, LV.SemType, false};
}

ExprVal IRGenerator::genConditional(ConditionalExpr &E) {
  Value *Cond = toBool(genExpr(*E.Cond), E.Loc);
  if (!Cond)
    return {};
  BasicBlock *TrueBB = newBlock("cond.true");
  BasicBlock *FalseBB = newBlock("cond.false");
  BasicBlock *EndBB = newBlock("cond.end");
  B.createCondBr(Cond, TrueBB, FalseBB);

  B.setInsertAtEnd(TrueBB);
  ExprVal TV = decay(genExpr(*E.TrueE));
  BasicBlock *TrueEnd = B.insertBlock();

  B.setInsertAtEnd(FalseBB);
  ExprVal FV = decay(genExpr(*E.FalseE));
  BasicBlock *FalseEnd = B.insertBlock();
  if (!TV.valid() || !FV.valid())
    return {};

  // Unify arm types.
  Type *T = TV.SemType;
  if (TV.SemType != FV.SemType) {
    if (TV.SemType->isScalar() && FV.SemType->isScalar()) {
      B.setInsertAtEnd(TrueEnd);
      ExprVal TV2 = TV, FVDummy = FV;
      // Compute common type without emitting into the wrong block.
      if (TV.SemType->isFloat() || FV.SemType->isFloat())
        T = M.types().floatTy();
      else if (TV.SemType->isPointer())
        T = TV.SemType;
      else if (FV.SemType->isPointer())
        T = FV.SemType;
      else
        T = TV.SemType->sizeInBytes() >= FV.SemType->sizeInBytes()
                ? TV.SemType
                : FV.SemType;
      B.setInsertAtEnd(TrueEnd);
      Value *TC = convert(TV, T, E.Loc);
      B.setInsertAtEnd(FalseEnd);
      Value *FC = convert(FV, T, E.Loc);
      if (!TC || !FC)
        return {};
      TV = {TC, T, false};
      FV = {FC, T, false};
      (void)TV2;
      (void)FVDummy;
    } else {
      Diags.error(E.Loc, "incompatible conditional arms");
      return {};
    }
  }
  B.setInsertAtEnd(TrueEnd);
  B.createBr(EndBB);
  B.setInsertAtEnd(FalseEnd);
  B.createBr(EndBB);
  B.setInsertAtEnd(EndBB);
  Instruction *Phi = B.createPhi(T);
  Phi->addIncoming(TV.V, TrueEnd);
  Phi->addIncoming(FV.V, FalseEnd);
  return {Phi, T, false};
}

ExprVal IRGenerator::genCast(CastExpr &E) {
  Type *To = resolveType(E.Target);
  if (!To)
    return {};
  ExprVal V = decay(genExpr(*E.Sub));
  if (!V.valid())
    return {};
  Type *From = V.SemType;
  B.setLoc(E.Loc);
  if (From == To)
    return V;
  if (To->isPointer() && From->isPointer())
    return {B.createCast(CastKind::BitCast, V.V, To), To, false};
  if (To->isPointer() && From->isInteger()) {
    Value *W = convert(V, M.types().uint64Ty(), E.Loc);
    return {B.createCast(CastKind::IntToPtr, W, To), To, false};
  }
  if (To->isInteger() && From->isPointer()) {
    Value *I = B.createCast(CastKind::PtrToInt, V.V, M.types().uint64Ty());
    return {convert(ExprVal{I, M.types().uint64Ty(), false}, To, E.Loc), To,
            false};
  }
  if (To->isInteger() && From->isFloat()) {
    Value *I = B.createCast(To->isUnsignedInteger() ? CastKind::FPToUI
                                                    : CastKind::FPToSI,
                            V.V, To);
    return {I, To, false};
  }
  if (To->isFloat() && From->isInteger())
    return {convert(V, To, E.Loc), To, false};
  if (To->isInteger() && From->isInteger())
    return {convert(V, To, E.Loc), To, false};
  if (To->isFloat() && From->isFloat())
    return V;
  Diags.error(E.Loc,
              "invalid cast from '" + From->str() + "' to '" + To->str() + "'");
  return {};
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

std::optional<IntrinsicId> IRGenerator::builtinFor(const std::string &Name,
                                                   size_t NumArgs) const {
  static const std::map<std::string, std::pair<IntrinsicId, size_t>> Table = {
      {"sqrtf", {IntrinsicId::Sqrt, 1}},   {"rsqrtf", {IntrinsicId::Rsqrt, 1}},
      {"fabsf", {IntrinsicId::Fabs, 1}},   {"fminf", {IntrinsicId::Fmin, 2}},
      {"fmaxf", {IntrinsicId::Fmax, 2}},   {"powf", {IntrinsicId::Pow, 2}},
      {"expf", {IntrinsicId::Exp, 1}},     {"logf", {IntrinsicId::Log, 1}},
      {"sinf", {IntrinsicId::Sin, 1}},     {"cosf", {IntrinsicId::Cos, 1}},
      {"floorf", {IntrinsicId::Floor, 1}}, {"min", {IntrinsicId::IMin, 2}},
      {"max", {IntrinsicId::IMax, 2}},     {"abs", {IntrinsicId::IAbs, 1}},
  };
  auto It = Table.find(Name);
  if (It == Table.end() || It->second.second != NumArgs)
    return std::nullopt;
  return It->second.first;
}

ExprVal IRGenerator::genIntrinsic(IntrinsicId Id, std::vector<ExprPtr> &Args,
                                  SourceLoc Loc) {
  bool IsFloatIntr = Id != IntrinsicId::IMin && Id != IntrinsicId::IMax &&
                     Id != IntrinsicId::IAbs;
  Type *T = IsFloatIntr ? M.types().floatTy() : M.types().int32Ty();
  std::vector<Value *> Vals;
  for (ExprPtr &A : Args) {
    Value *V = convert(genExpr(*A), T, Loc);
    if (!V)
      return {};
    Vals.push_back(V);
  }
  B.setLoc(Loc);
  return {B.createIntrinsic(Id, T, Vals), T, false};
}

int IRGenerator::resolveOverload(const std::vector<FnLowering *> &Candidates,
                                 const std::vector<Type *> &ArgTypes,
                                 SourceLoc Loc, const std::string &What) {
  int Best = -1;
  int BestCost = INT32_MAX;
  bool Ambiguous = false;
  for (size_t C = 0; C < Candidates.size(); ++C) {
    FnLowering *L = Candidates[C];
    if (L->ParamSem.size() != ArgTypes.size())
      continue;
    int Total = 0;
    bool Viable = true;
    for (size_t A = 0; A < ArgTypes.size(); ++A) {
      Type *To = L->ParamSem[A];
      Type *From = ArgTypes[A];
      int Cost;
      if (L->ParamIsRef[A] || To->isClass()) {
        // References / byval classes bind to the same class or a derived
        // class lvalue.
        auto *FromC = dyn_cast<ClassType>(From);
        auto *ToC = dyn_cast<ClassType>(To);
        if (FromC && ToC && FromC->isBaseOrSelf(ToC))
          Cost = FromC == ToC ? 0 : 1;
        else if (L->ParamIsRef[A] && From == To)
          Cost = 0;
        else
          Cost = -1;
      } else {
        Cost = conversionCost(From, To);
      }
      if (Cost < 0) {
        Viable = false;
        break;
      }
      Total += Cost;
    }
    if (!Viable)
      continue;
    if (Total < BestCost) {
      BestCost = Total;
      Best = int(C);
      Ambiguous = false;
    } else if (Total == BestCost) {
      Ambiguous = true;
    }
  }
  if (Best < 0) {
    Diags.error(Loc, "no matching overload for '" + What + "'");
    return -1;
  }
  if (Ambiguous) {
    Diags.error(Loc, "ambiguous call to '" + What + "'");
    return -1;
  }
  return Best;
}

ExprVal IRGenerator::emitCall(FnLowering &L, Value *ThisPtr,
                              std::vector<ExprVal> &ArgVals,
                              bool AllowVirtual, SourceLoc Loc) {
  B.setLoc(Loc);
  std::vector<Value *> Lowered;
  if (L.ThisClass) {
    assert(ThisPtr && "method call without this");
    Lowered.push_back(ThisPtr);
  }
  Value *SRetSlot = nullptr;
  if (L.HasSRet) {
    SRetSlot = B.createAlloca(L.RetSem, "ret.tmp");
    Lowered.push_back(SRetSlot);
  }
  for (size_t A = 0; A < ArgVals.size(); ++A) {
    ExprVal &AV = ArgVals[A];
    Type *Sem = L.ParamSem[A];
    if (L.ParamIsByValClass[A]) {
      if (!AV.IsAddr) {
        Diags.error(Loc, "expected a class value argument");
        return {};
      }
      Value *Src = AV.V;
      if (AV.SemType != Sem)
        Src = upcastPointer(Src, cast<ClassType>(AV.SemType),
                            cast<ClassType>(Sem), Loc);
      Value *Copy = B.createAlloca(Sem, "byval.tmp");
      B.createMemcpy(Copy, Src, Sem->sizeInBytes());
      Lowered.push_back(Copy);
    } else if (L.ParamIsRef[A]) {
      if (AV.IsAddr) {
        Value *Addr = AV.V;
        if (AV.SemType != Sem && AV.SemType->isClass() && Sem->isClass())
          Addr = upcastPointer(Addr, cast<ClassType>(AV.SemType),
                               cast<ClassType>(Sem), Loc);
        Lowered.push_back(Addr);
      } else if (AV.SemType->isPointer() &&
                 Sem == cast<PointerType>(AV.SemType)->pointee()) {
        // A pointer rvalue can bind to a reference of the pointee... it
        // cannot in C++; reject.
        Diags.error(Loc, "reference argument must be an lvalue");
        return {};
      } else {
        Diags.error(Loc, "reference argument must be an lvalue");
        return {};
      }
    } else {
      Value *V = convert(AV, Sem, Loc);
      if (!V)
        return {};
      Lowered.push_back(V);
    }
  }

  Instruction *CallI = nullptr;
  bool Virtual = AllowVirtual && L.IsVirtual && L.ThisClass;
  if (Virtual) {
    unsigned Group = 0, Slot = 0;
    bool Found =
        L.ThisClass->findVirtualSlot(L.Decl->Name, L.VirtualSig, &Group, &Slot);
    assert(Found && "virtual method without a slot");
    (void)Found;
    // Dispatch uses the vptr of the group's subobject.
    uint64_t GroupOff = L.ThisClass->vtables()[Group].Offset;
    Value *Obj = Lowered[0];
    if (GroupOff != 0)
      Obj = ptrAdd(Obj, int64_t(GroupOff), M.types().uint8Ty());
    std::vector<Value *> Rest(Lowered.begin() + 1, Lowered.end());
    Type *RetTy = L.Fn->returnType();
    CallI = B.createVCall(L.ThisClass, Group, Slot, RetTy, Obj, Rest);
  } else {
    CallI = B.createCall(L.Fn, Lowered);
  }

  if (L.HasSRet)
    return {SRetSlot, L.RetSem, true};
  if (L.RetSem->isVoid())
    return {CallI, M.types().voidTy(), false};
  return {CallI, L.RetSem, false};
}

ExprVal IRGenerator::genCallExpr(CallExpr &E) {
  std::string Joined;
  for (size_t I = 0; I < E.CalleePath.size(); ++I)
    Joined += (I ? "::" : "") + E.CalleePath[I];

  // Builtin math functions.
  if (E.CalleePath.size() == 1)
    if (auto Id = builtinFor(Joined, E.Args.size()))
      return genIntrinsic(*Id, E.Args, E.Loc);

  // Evaluate arguments once.
  std::vector<ExprVal> ArgVals;
  std::vector<Type *> ArgTypes;
  for (ExprPtr &A : E.Args) {
    ExprVal V = genExpr(*A);
    if (!V.valid())
      return {};
    ArgVals.push_back(V);
    ArgTypes.push_back(V.SemType);
  }

  // Free functions: exact qualified name, then unique suffix match.
  std::vector<FnLowering *> Candidates;
  auto It = FreeFns.find(Joined);
  if (It != FreeFns.end()) {
    Candidates = It->second;
  } else {
    for (auto &[QualName, Fns] : FreeFns) {
      if (QualName.size() > Joined.size() + 2 &&
          QualName.compare(QualName.size() - Joined.size(), Joined.size(),
                           Joined) == 0 &&
          QualName[QualName.size() - Joined.size() - 1] == ':')
        Candidates.insert(Candidates.end(), Fns.begin(), Fns.end());
    }
  }
  if (!Candidates.empty()) {
    int Best = resolveOverload(Candidates, ArgTypes, E.Loc, Joined);
    if (Best < 0)
      return {};
    return emitCall(*Candidates[size_t(Best)], nullptr, ArgVals, false,
                    E.Loc);
  }

  // Implicit method call on this.
  if (CurClass && E.CalleePath.size() == 1) {
    ClassType *Search = CurClass;
    std::vector<FnLowering *> MethodCands;
    std::vector<ClassType *> Chain{Search};
    // Collect this class's and bases' methods with the name.
    size_t Head = 0;
    while (Head < Chain.size()) {
      ClassType *C = Chain[Head++];
      for (FnLowering *ML : MethodsOf[C])
        if (ML->Decl->Name == Joined)
          MethodCands.push_back(ML);
      if (MethodCands.empty())
        for (const BaseInfo &BI : C->bases())
          Chain.push_back(BI.Base);
    }
    if (!MethodCands.empty()) {
      int Best = resolveOverload(MethodCands, ArgTypes, E.Loc, Joined);
      if (Best < 0)
        return {};
      FnLowering *L = MethodCands[size_t(Best)];
      Value *This = CurThis;
      if (L->ThisClass != CurClass)
        This = upcastPointer(This, CurClass, L->ThisClass, E.Loc);
      return emitCall(*L, This, ArgVals, /*AllowVirtual=*/true, E.Loc);
    }
  }

  Diags.error(E.Loc, "unknown function '" + Joined + "'");
  return {};
}

ExprVal IRGenerator::genMethodCall(MethodCallExpr &E) {
  // Receiver.
  ClassType *Class = nullptr;
  Value *ObjPtr = nullptr;
  if (E.IsArrow) {
    ExprVal Base = genExpr(*E.Base);
    if (!Base.valid())
      return {};
    auto *PT = dyn_cast<PointerType>(Base.SemType);
    if (!PT || !PT->pointee()->isClass()) {
      Diags.error(E.Loc, "'->' call on a non-class-pointer");
      return {};
    }
    Class = cast<ClassType>(PT->pointee());
    ObjPtr = Base.V;
  } else {
    ExprVal Base = genLValue(*E.Base);
    if (!Base.valid())
      return {};
    if (!Base.SemType->isClass()) {
      Diags.error(E.Loc, "'.' call on a non-class value");
      return {};
    }
    Class = cast<ClassType>(Base.SemType);
    ObjPtr = Base.V;
  }

  std::vector<ExprVal> ArgVals;
  std::vector<Type *> ArgTypes;
  for (ExprPtr &A : E.Args) {
    ExprVal V = genExpr(*A);
    if (!V.valid())
      return {};
    ArgVals.push_back(V);
    ArgTypes.push_back(V.SemType);
  }

  // Qualified calls (obj.Base::m()) disable virtual dispatch and search the
  // named class.
  ClassType *SearchRoot = Class;
  bool AllowVirtual = true;
  if (!E.QualifiedClass.empty()) {
    SearchRoot = lookupClass(E.QualifiedClass, E.Loc, /*Required=*/true);
    if (!SearchRoot)
      return {};
    AllowVirtual = false;
  }

  // Search the class, then bases (name hiding: stop at the first class that
  // declares the name).
  std::vector<FnLowering *> Candidates;
  std::vector<ClassType *> Frontier{SearchRoot};
  while (Candidates.empty() && !Frontier.empty()) {
    std::vector<ClassType *> Next;
    for (ClassType *C : Frontier) {
      for (FnLowering *ML : MethodsOf[C])
        if (ML->Decl->Name == E.Name)
          Candidates.push_back(ML);
      for (const BaseInfo &BI : C->bases())
        Next.push_back(BI.Base);
    }
    Frontier = std::move(Next);
  }
  if (Candidates.empty()) {
    Diags.error(E.Loc, "class '" + SearchRoot->name() + "' has no method '" +
                           E.Name + "'");
    return {};
  }
  int Best = resolveOverload(Candidates, ArgTypes, E.Loc, E.Name);
  if (Best < 0)
    return {};
  FnLowering *L = Candidates[size_t(Best)];
  Value *This = ObjPtr;
  if (L->ThisClass != Class)
    This = upcastPointer(This, Class, L->ThisClass, E.Loc);
  return emitCall(*L, This, ArgVals, AllowVirtual, E.Loc);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

std::unique_ptr<Module>
concord::frontend::compileProgram(std::string_view Source,
                                  const std::string &ModuleName,
                                  DiagnosticEngine &Diags) {
  TranslationUnit Unit = parse(Source, Diags);
  if (Diags.hasError())
    return nullptr;
  auto M = std::make_unique<Module>(ModuleName);
  IRGenerator Gen(Unit, *M, Diags);
  if (!Gen.run())
    return nullptr;
  return M;
}

cir::Function *concord::frontend::findMethod(Module &M,
                                             const std::string &ClassName,
                                             const std::string &MethodName,
                                             unsigned NumExplicitArgs) {
  std::string Prefix = ClassName + "::" + MethodName + "(";
  Function *Found = nullptr;
  for (const auto &F : M.functions()) {
    const std::string &N = F->name();
    if (N.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    ClassType *C = F->methodOf();
    if (!C || C->name() != ClassName)
      continue;
    // Count lowered args minus this (and minus sret if return is void with
    // an extra pointer). We rely on declaration arity instead: lowered
    // params = 1 (this) [+1 sret] + explicit.
    unsigned Lowered = F->numArgs();
    if (Lowered == NumExplicitArgs + 1 || Lowered == NumExplicitArgs + 2) {
      if (Found)
        return nullptr; // Ambiguous overload set.
      Found = F.get();
    }
  }
  return Found;
}

cir::Function *
concord::frontend::createKernelEntry(Module &M, const std::string &ClassName,
                                     DiagnosticEngine &Diags) {
  ClassType *Body = M.types().findClass(ClassName);
  if (!Body) {
    Diags.error(SourceLoc(), "kernel body class '" + ClassName +
                                 "' not found in kernel source");
    return nullptr;
  }
  Function *Op = findMethod(M, ClassName, "operator()", 1);
  if (!Op) {
    Diags.error(SourceLoc(),
                "class '" + ClassName + "' has no operator()(int)");
    return nullptr;
  }

  std::string Name = "kernel$" + ClassName;
  if (Function *Existing = M.findFunction(Name))
    return Existing;

  FunctionType *KTy = M.types().functionTy(M.types().voidTy(),
                                           {M.types().uint64Ty()});
  Function *K = M.createFunction(Name, KTy);
  K->setKernel(true);

  BasicBlock *Entry = K->createBlock("entry");
  IRBuilder B(M);
  B.setInsertAtEnd(Entry);
  Instruction *Gid = B.createDeviceQuery(Opcode::GlobalId, "i");
  Value *This = B.createCast(CastKind::IntToPtr, K->arg(0),
                             M.types().pointerTo(Body), "body");
  B.createCall(Op, {This, Gid});
  B.createRet();
  return K;
}
