//===- Parser.h - Concord Kernel Language parser ----------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser producing the CKL AST. Constructs outside
/// Concord's GPU subset (new/delete, throw/try, goto, switch) are reported
/// as "unsupported feature" diagnostics so the runtime can fall back to CPU
/// execution, as the paper specifies in section 2.1.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_FRONTEND_PARSER_H
#define CONCORD_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"

namespace concord {
namespace frontend {

/// Parses a CKL translation unit. Errors are reported to \p Diags; a
/// best-effort unit is returned even on error.
TranslationUnit parse(std::string_view Source, DiagnosticEngine &Diags);

} // namespace frontend
} // namespace concord

#endif // CONCORD_FRONTEND_PARSER_H
