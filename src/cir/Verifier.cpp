//===- Verifier.cpp -------------------------------------------------------===//

#include "cir/Verifier.h"

#include "analysis/Dominators.h"
#include "cir/Module.h"
#include "support/StringUtils.h"

#include <functional>
#include <map>
#include <set>

using namespace concord;
using namespace concord::cir;

namespace {

/// SSA dominance: every operand must be defined at a point that dominates
/// the use. Phi operands are uses on the incoming edge, so their defs must
/// dominate the incoming block's exit rather than the phi itself. Only
/// blocks reachable from the entry are checked (unreachable code cannot
/// execute and simplifyCFG deletes it), but a reachable use of a value
/// defined in unreachable code is still an error.
void verifyDominance(analysis::DominatorTree &DT,
                     const std::function<void(const std::string &)> &Err) {
  std::map<const Instruction *, size_t> Position;
  for (BasicBlock *BB : DT.order())
    for (size_t Idx = 0; Idx < BB->size(); ++Idx)
      Position[BB->instr(Idx)] = Idx;

  auto DefDominatesEdge = [&](const Instruction *Def, BasicBlock *Incoming) {
    // Reading on the edge out of Incoming: any position in Incoming (or a
    // dominator of it) works.
    return Def->parent() == Incoming ||
           DT.dominates(Def->parent(), Incoming);
  };

  for (BasicBlock *BB : DT.order()) {
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->instr(Idx);
      if (I->isPhi()) {
        for (unsigned K = 0; K < I->numOperands(); ++K) {
          auto *Def = dyn_cast<Instruction>(I->incomingValue(K));
          if (Def && !DefDominatesEdge(Def, I->incomingBlock(K)))
            Err("phi operand '" + Def->name() + "' does not dominate the "
                "incoming edge from '" + I->incomingBlock(K)->name() +
                "' to '" + BB->name() + "'");
        }
        continue;
      }
      for (unsigned Op = 0; Op < I->numOperands(); ++Op) {
        auto *Def = dyn_cast<Instruction>(I->operand(Op));
        if (!Def)
          continue;
        auto DefPos = Position.find(Def);
        if (DefPos == Position.end()) {
          Err("operand '" + Def->name() + "' of " +
              opcodeName(I->opcode()) + " in '" + BB->name() +
              "' is defined in unreachable code");
          continue;
        }
        bool Dominates = Def->parent() == BB
                             ? DefPos->second < Idx
                             : DT.dominates(Def->parent(), BB);
        if (!Dominates)
          Err("operand '" + Def->name() + "' of " +
              opcodeName(I->opcode()) + " in '" + BB->name() +
              "' does not dominate its use (use before def)");
      }
    }
  }
}

} // namespace

std::vector<std::string> concord::cir::verifyFunction(const Function &F) {
  std::vector<std::string> Errors;
  auto Err = [&](const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": " + Msg);
  };

  if (F.empty()) {
    Err("function has no body");
    return Errors;
  }

  // Collect all instructions and block membership.
  std::set<const Instruction *> AllInstrs;
  std::set<const BasicBlock *> AllBlocks;
  for (BasicBlock *BB : F) {
    AllBlocks.insert(BB);
    for (Instruction *I : *BB)
      AllInstrs.insert(I);
  }

  // Predecessor map for phi checking.
  std::map<const BasicBlock *, std::set<const BasicBlock *>> Preds;
  for (BasicBlock *BB : F)
    for (BasicBlock *Succ : BB->successors())
      Preds[Succ].insert(BB);

  for (BasicBlock *BB : F) {
    if (BB->empty()) {
      Err("block '" + BB->name() + "' is empty");
      continue;
    }
    if (!BB->terminator())
      Err("block '" + BB->name() + "' lacks a terminator");

    bool SeenNonPhi = false;
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->instr(Idx);
      if (I->isTerminator() && Idx + 1 != BB->size())
        Err("terminator in the middle of block '" + BB->name() + "'");
      if (I->isPhi()) {
        if (SeenNonPhi)
          Err("phi after non-phi in block '" + BB->name() + "'");
      } else {
        SeenNonPhi = true;
      }
      if (I->parent() != BB)
        Err("instruction parent link broken in '" + BB->name() + "'");

      // Operand sanity.
      for (unsigned Op = 0; Op < I->numOperands(); ++Op) {
        const Value *V = I->operand(Op);
        if (!V) {
          Err("null operand in " + std::string(opcodeName(I->opcode())));
          continue;
        }
        if (auto *OpI = dyn_cast<Instruction>(V))
          if (!AllInstrs.count(OpI))
            Err("operand instruction from another function in '" +
                BB->name() + "'");
        if (auto *Arg = dyn_cast<Argument>(V))
          if (Arg->parent() != &F)
            Err("argument of another function used in '" + BB->name() + "'");
      }
      for (unsigned B = 0; B < I->numBlocks(); ++B)
        if (!AllBlocks.count(I->block(B)))
          Err("reference to a block of another function");

      // Per-opcode checks.
      switch (I->opcode()) {
      case Opcode::Load:
        if (!I->operand(0)->type()->isPointer() &&
            !I->operand(0)->type()->isUnsignedInteger())
          Err("load address is neither pointer nor integer");
        break;
      case Opcode::Store:
        if (I->numOperands() != 2)
          Err("store needs exactly two operands");
        break;
      case Opcode::Phi:
        if (I->numOperands() != I->numBlocks())
          Err("phi value/block count mismatch");
        else {
          const auto &P = Preds[BB];
          if (I->numBlocks() != P.size())
            Err("phi incoming count differs from predecessor count in '" +
                BB->name() + "'");
          for (unsigned K = 0; K < I->numBlocks(); ++K) {
            if (!P.count(I->incomingBlock(K)))
              Err("phi incoming block is not a predecessor of '" +
                  BB->name() + "'");
            if (I->incomingValue(K)->type() != I->type())
              Err("phi incoming value type mismatch in '" + BB->name() + "'");
          }
        }
        break;
      case Opcode::CondBr:
        if (I->numBlocks() != 2)
          Err("condbr needs two successor blocks");
        if (I->numOperands() != 1 || !I->operand(0)->type()->isBool())
          Err("condbr condition must be bool");
        break;
      case Opcode::Br:
        if (I->numBlocks() != 1)
          Err("br needs one successor block");
        break;
      case Opcode::Ret: {
        bool WantsValue = !F.returnType()->isVoid();
        if (WantsValue && I->numOperands() != 1)
          Err("ret must carry a value in a non-void function");
        if (!WantsValue && I->numOperands() != 0)
          Err("ret carries a value in a void function");
        if (WantsValue && I->numOperands() == 1 &&
            I->operand(0)->type() != F.returnType())
          Err("ret value type differs from function return type");
        break;
      }
      case Opcode::Call: {
        if (!I->callee()) {
          Err("call without a callee");
          break;
        }
        const FunctionType *FT = I->callee()->functionType();
        if (FT->params().size() != I->numOperands())
          Err("call argument count mismatch to @" + I->callee()->name());
        break;
      }
      case Opcode::VCall:
        if (I->numOperands() < 1)
          Err("vcall needs at least the object operand");
        if (!I->vcallClass())
          Err("vcall without a static class");
        break;
      default:
        break;
      }
    }
  }

  // Dominance needs a structurally sound CFG; skip it when the structural
  // checks above already failed.
  if (Errors.empty()) {
    analysis::DominatorTree DT(const_cast<Function &>(F));
    verifyDominance(DT, Err);
  }
  return Errors;
}

std::vector<std::string> concord::cir::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (const auto &F : M.functions()) {
    if (F->empty())
      continue; // Declaration only (e.g. a pure virtual method).
    auto FE = verifyFunction(*F);
    Errors.insert(Errors.end(), FE.begin(), FE.end());
  }
  return Errors;
}
