//===- IRBuilder.h - Convenience builder for Concord IR --------*- C++ -*-===//
///
/// \file
/// Creates instructions at an insertion point, inferring result types.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_IRBUILDER_H
#define CONCORD_CIR_IRBUILDER_H

#include "cir/Module.h"
#include <limits>

namespace concord {
namespace cir {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }
  TypeContext &types() { return M.types(); }

  /// Sets the insertion point to the end of \p BB.
  void setInsertAtEnd(BasicBlock *BB) {
    Block = BB;
    Index = AtEnd;
  }

  /// Sets the insertion point immediately before instruction index \p Idx.
  void setInsertAt(BasicBlock *BB, size_t Idx) {
    Block = BB;
    Index = Idx;
  }

  BasicBlock *insertBlock() const { return Block; }

  //===--- Memory -----------------------------------------------------===//

  Instruction *createAlloca(Type *Allocated, std::string Name = "") {
    auto I = make(Opcode::Alloca, types().pointerTo(Allocated));
    I->setAuxType(Allocated);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createLoad(Value *Ptr, std::string Name = "") {
    auto *PT = cast<PointerType>(Ptr->type());
    auto I = make(Opcode::Load, PT->pointee());
    I->addOperand(Ptr);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createStore(Value *Val, Value *Ptr) {
    auto I = make(Opcode::Store, types().voidTy());
    I->addOperand(Val);
    I->addOperand(Ptr);
    return insert(std::move(I), "");
  }

  Instruction *createMemcpy(Value *Dst, Value *Src, uint64_t Bytes) {
    auto I = make(Opcode::Memcpy, types().voidTy());
    I->addOperand(Dst);
    I->addOperand(Src);
    I->setAttr(Bytes);
    return insert(std::move(I), "");
  }

  //===--- Arithmetic -------------------------------------------------===//

  Instruction *createBinOp(Opcode Op, Value *A, Value *B,
                           std::string Name = "") {
    assert(A->type() == B->type() && "binop operand type mismatch");
    auto I = make(Op, A->type());
    I->addOperand(A);
    I->addOperand(B);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createUnOp(Opcode Op, Value *A, std::string Name = "") {
    auto I = make(Op, A->type());
    I->addOperand(A);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createICmp(ICmpPred Pred, Value *A, Value *B,
                          std::string Name = "") {
    auto I = make(Opcode::ICmp, types().boolTy());
    I->addOperand(A);
    I->addOperand(B);
    I->setAttr(uint64_t(Pred));
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createFCmp(FCmpPred Pred, Value *A, Value *B,
                          std::string Name = "") {
    auto I = make(Opcode::FCmp, types().boolTy());
    I->addOperand(A);
    I->addOperand(B);
    I->setAttr(uint64_t(Pred));
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createSelect(Value *Cond, Value *T, Value *F,
                            std::string Name = "") {
    assert(T->type() == F->type() && "select arm type mismatch");
    auto I = make(Opcode::Select, T->type());
    I->addOperand(Cond);
    I->addOperand(T);
    I->addOperand(F);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createCast(CastKind Kind, Value *V, Type *To,
                          std::string Name = "") {
    auto I = make(Opcode::Cast, To);
    I->addOperand(V);
    I->setAttr(uint64_t(Kind));
    return insert(std::move(I), std::move(Name));
  }

  //===--- Addressing -------------------------------------------------===//

  /// &Base->field at byte offset \p Offset with field type \p FieldTy.
  Instruction *createFieldAddr(Value *Base, uint64_t Offset, Type *FieldTy,
                               std::string Name = "") {
    assert(Base->type()->isPointer() && "field base must be a pointer");
    auto I = make(Opcode::FieldAddr, types().pointerTo(FieldTy));
    I->addOperand(Base);
    I->setAttr(Offset);
    return insert(std::move(I), std::move(Name));
  }

  /// &Base[Index] where Base is an element pointer.
  Instruction *createIndexAddr(Value *Base, Value *Index,
                               std::string Name = "") {
    assert(Base->type()->isPointer() && "index base must be a pointer");
    auto I = make(Opcode::IndexAddr, Base->type());
    I->addOperand(Base);
    I->addOperand(Index);
    return insert(std::move(I), std::move(Name));
  }

  //===--- Calls ------------------------------------------------------===//

  Instruction *createCall(Function *Callee, const std::vector<Value *> &Args,
                          std::string Name = "") {
    auto I = make(Opcode::Call, Callee->returnType());
    for (Value *A : Args)
      I->addOperand(A);
    I->setCallee(Callee);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createVCall(const ClassType *StaticClass, unsigned Group,
                           unsigned Slot, Type *RetTy, Value *Obj,
                           const std::vector<Value *> &Args,
                           std::string Name = "") {
    auto I = make(Opcode::VCall, RetTy);
    I->addOperand(Obj);
    for (Value *A : Args)
      I->addOperand(A);
    I->setVCallTarget(StaticClass, Group, Slot);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createIntrinsic(IntrinsicId Id, Type *RetTy,
                               const std::vector<Value *> &Args,
                               std::string Name = "") {
    auto I = make(Opcode::Intrinsic, RetTy);
    for (Value *A : Args)
      I->addOperand(A);
    I->setAttr(uint64_t(Id));
    return insert(std::move(I), std::move(Name));
  }

  //===--- SVM translation & device values ------------------------------===//

  Instruction *createCpuToGpu(Value *CpuAddr, std::string Name = "") {
    auto I = make(Opcode::CpuToGpu, CpuAddr->type());
    I->addOperand(CpuAddr);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createGpuToCpu(Value *GpuAddr, std::string Name = "") {
    auto I = make(Opcode::GpuToCpu, GpuAddr->type());
    I->addOperand(GpuAddr);
    return insert(std::move(I), std::move(Name));
  }

  Instruction *createDeviceQuery(Opcode Op, std::string Name = "") {
    assert(Op == Opcode::GlobalId || Op == Opcode::LocalId ||
           Op == Opcode::GroupId || Op == Opcode::GroupSize ||
           Op == Opcode::NumCores);
    return insert(make(Op, types().int32Ty()), std::move(Name));
  }

  Instruction *createLocalBase(std::string Name = "") {
    return insert(make(Opcode::LocalBase, types().uint64Ty()),
                  std::move(Name));
  }

  Instruction *createBarrier() {
    return insert(make(Opcode::Barrier, types().voidTy()), "");
  }

  //===--- Control flow -------------------------------------------------===//

  Instruction *createPhi(Type *Ty, std::string Name = "") {
    return insert(make(Opcode::Phi, Ty), std::move(Name));
  }

  Instruction *createBr(BasicBlock *Target) {
    auto I = make(Opcode::Br, types().voidTy());
    I->addBlock(Target);
    return insert(std::move(I), "");
  }

  Instruction *createCondBr(Value *Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB) {
    auto I = make(Opcode::CondBr, types().voidTy());
    I->addOperand(Cond);
    I->addBlock(TrueBB);
    I->addBlock(FalseBB);
    return insert(std::move(I), "");
  }

  Instruction *createRet(Value *V = nullptr) {
    auto I = make(Opcode::Ret, types().voidTy());
    if (V)
      I->addOperand(V);
    return insert(std::move(I), "");
  }

  Instruction *createTrap() {
    return insert(make(Opcode::Trap, types().voidTy()), "");
  }

  /// Sets the source location attached to subsequently created
  /// instructions.
  void setLoc(SourceLoc L) { Loc = L; }

private:
  static constexpr size_t AtEnd = std::numeric_limits<size_t>::max();

  std::unique_ptr<Instruction> make(Opcode Op, Type *Ty) {
    return std::make_unique<Instruction>(Op, Ty);
  }

  Instruction *insert(std::unique_ptr<Instruction> I, std::string Name) {
    assert(Block && "no insertion point set");
    I->setLoc(Loc);
    if (!Name.empty())
      I->setName(std::move(Name));
    if (Index == AtEnd)
      return Block->append(std::move(I));
    return Block->insertAt(Index++, std::move(I));
  }

  Module &M;
  BasicBlock *Block = nullptr;
  size_t Index = AtEnd;
  SourceLoc Loc;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_IRBUILDER_H
