//===- Verifier.h - Structural IR checks ------------------------*- C++ -*-===//
///
/// \file
/// Verifies structural invariants of Concord IR. Returns a list of
/// violation messages (empty means the IR is well-formed). Run after IR
/// generation and after every transform in tests.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_VERIFIER_H
#define CONCORD_CIR_VERIFIER_H

#include <string>
#include <vector>

namespace concord {
namespace cir {

class Function;
class Module;

std::vector<std::string> verifyFunction(const Function &F);
std::vector<std::string> verifyModule(const Module &M);

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_VERIFIER_H
