//===- BasicBlock.h - Concord IR basic blocks -------------------*- C++ -*-===//
///
/// \file
/// A basic block owns its instructions. Block order within a Function is the
/// layout order used by code generation.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_BASICBLOCK_H
#define CONCORD_CIR_BASICBLOCK_H

#include "cir/Instruction.h"
#include <memory>
#include <vector>

namespace concord {
namespace cir {

class Function;

class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Function *parent() const { return Parent; }

  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }
  Instruction *front() const { return Instrs.front().get(); }
  Instruction *back() const { return Instrs.back().get(); }
  Instruction *instr(size_t I) const { return Instrs[I].get(); }

  /// The terminator, or null if the block is not yet terminated.
  Instruction *terminator() const {
    if (Instrs.empty() || !Instrs.back()->isTerminator())
      return nullptr;
    return Instrs.back().get();
  }

  /// Successor blocks, from the terminator (empty for Ret/Trap).
  std::vector<BasicBlock *> successors() const {
    Instruction *T = terminator();
    if (!T || T->opcode() == Opcode::Ret || T->opcode() == Opcode::Trap)
      return {};
    return T->blocks();
  }

  /// Appends an instruction (takes ownership).
  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Instrs.push_back(std::move(I));
    return Instrs.back().get();
  }

  /// Inserts before position \p Index (takes ownership).
  Instruction *insertAt(size_t Index, std::unique_ptr<Instruction> I) {
    assert(Index <= Instrs.size());
    I->setParent(this);
    auto It = Instrs.insert(Instrs.begin() + Index, std::move(I));
    return It->get();
  }

  /// Index of \p I within this block; asserts if absent.
  size_t indexOf(const Instruction *I) const {
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      if (Instrs[Idx].get() == I)
        return Idx;
    assert(false && "instruction not in this block");
    return ~size_t(0);
  }

  /// Removes and destroys the instruction at \p Index.
  void erase(size_t Index) {
    assert(Index < Instrs.size());
    Instrs.erase(Instrs.begin() + Index);
  }

  /// Removes the instruction at \p Index, transferring ownership.
  std::unique_ptr<Instruction> take(size_t Index) {
    assert(Index < Instrs.size());
    std::unique_ptr<Instruction> I = std::move(Instrs[Index]);
    Instrs.erase(Instrs.begin() + Index);
    I->setParent(nullptr);
    return I;
  }

  /// Iteration over raw instruction pointers.
  class iterator {
  public:
    iterator(const std::vector<std::unique_ptr<Instruction>> *Vec, size_t I)
        : Vec(Vec), I(I) {}
    Instruction *operator*() const { return (*Vec)[I].get(); }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const iterator &O) const { return I != O.I; }

  private:
    const std::vector<std::unique_ptr<Instruction>> *Vec;
    size_t I;
  };
  iterator begin() const { return iterator(&Instrs, 0); }
  iterator end() const { return iterator(&Instrs, Instrs.size()); }

  /// The phi instructions at the head of the block.
  std::vector<Instruction *> phis() const {
    std::vector<Instruction *> Result;
    for (const auto &I : Instrs) {
      if (!I->isPhi())
        break;
      Result.push_back(I.get());
    }
    return Result;
  }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Instrs;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_BASICBLOCK_H
