//===- Type.h - Concord IR type system -------------------------*- C++ -*-===//
///
/// \file
/// Types for Concord IR (CIR), the intermediate representation the Concord
/// kernel compiler lowers device code into. Types are uniqued and owned by a
/// TypeContext, so type equality is pointer equality.
///
/// ClassType carries full C++-style object layout: non-virtual bases at
/// computed offsets (including multiple inheritance), fields, and one or
/// more vtable groups. A vtable group is a (subobject offset, slot list)
/// pair; a class has a primary group at offset 0 shared with its primary
/// base chain, plus one group per vtable-carrying non-primary base. This is
/// the layout the paper's section 3.2 lowers virtual calls against.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_TYPE_H
#define CONCORD_CIR_TYPE_H

#include "support/Casting.h"
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace concord {
namespace cir {

class Function;
class TypeContext;

enum class TypeKind {
  Void,
  Bool,
  Int8,
  Int16,
  Int32,
  Int64,
  UInt8,
  UInt16,
  UInt32,
  UInt64,
  Float32,
  Pointer,
  Array,
  Class,
  Function,
};

/// Base of all CIR types.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isFloat() const { return Kind == TypeKind::Float32; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isClass() const { return Kind == TypeKind::Class; }
  bool isFunction() const { return Kind == TypeKind::Function; }

  bool isInteger() const {
    return Kind >= TypeKind::Bool && Kind <= TypeKind::UInt64;
  }
  bool isSignedInteger() const {
    return Kind >= TypeKind::Int8 && Kind <= TypeKind::Int64;
  }
  bool isUnsignedInteger() const {
    return Kind >= TypeKind::UInt8 && Kind <= TypeKind::UInt64;
  }
  /// Any type a CIR virtual register can hold (scalar or pointer).
  bool isScalar() const {
    return isInteger() || isFloat() || isPointer();
  }

  /// Size of a value of this type in bytes (asserts on void/function).
  uint64_t sizeInBytes() const;
  /// Natural alignment in bytes.
  uint64_t alignInBytes() const;

  /// Short printable name ("i32", "float", "Node*", ...).
  std::string str() const;

  virtual ~Type() = default;

protected:
  Type(TypeKind Kind, TypeContext &Ctx) : Kind(Kind), Ctx(&Ctx) {}
  TypeContext *context() const { return Ctx; }

private:
  TypeKind Kind;
  TypeContext *Ctx;
};

/// Pointer to a pointee type. CIR pointers are 64-bit CPU virtual addresses;
/// whether a given SSA value currently holds the CPU or the GPU
/// representation of an address is tracked by the SVM lowering pass, not by
/// the type system (both representations are 64-bit integers with the same
/// pointee).
class PointerType : public Type {
public:
  Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->isPointer(); }

private:
  friend class TypeContext;
  PointerType(Type *Pointee, TypeContext &Ctx)
      : Type(TypeKind::Pointer, Ctx), Pointee(Pointee) {}
  Type *Pointee;
};

/// Fixed-length array type (used for fields like `Node *forward[8]` and
/// local scratch arrays).
class ArrayType : public Type {
public:
  Type *element() const { return Element; }
  uint64_t length() const { return Length; }

  static bool classof(const Type *T) { return T->isArray(); }

private:
  friend class TypeContext;
  ArrayType(Type *Element, uint64_t Length, TypeContext &Ctx)
      : Type(TypeKind::Array, Ctx), Element(Element), Length(Length) {}
  Type *Element;
  uint64_t Length;
};

/// Function signature type.
class FunctionType : public Type {
public:
  Type *returnType() const { return Return; }
  const std::vector<Type *> &params() const { return Params; }

  static bool classof(const Type *T) { return T->isFunction(); }

private:
  friend class TypeContext;
  FunctionType(Type *Return, std::vector<Type *> Params, TypeContext &Ctx)
      : Type(TypeKind::Function, Ctx), Return(Return),
        Params(std::move(Params)) {}
  Type *Return;
  std::vector<Type *> Params;
};

/// A field of a class.
struct FieldInfo {
  std::string Name;
  Type *Ty = nullptr;
  uint64_t Offset = 0;
};

/// A direct base class at a layout offset.
struct BaseInfo {
  class ClassType *Base = nullptr;
  uint64_t Offset = 0;
};

/// One virtual-method slot in a vtable group.
struct VTableSlot {
  std::string Name;          ///< Unqualified method name.
  FunctionType *Signature;   ///< Signature *without* the this parameter.
  Function *Impl = nullptr;  ///< Final implementation (may be a thunk).
};

/// A vtable-carrying subobject: the group's offset inside the complete
/// object and its slot list.
struct VTableGroup {
  uint64_t Offset = 0;
  std::vector<VTableSlot> Slots;
};

/// A C++-like class/struct with layout.
///
/// Layout algorithm (finalizeLayout): the primary base (first
/// vtable-carrying direct base, else first base) is placed at offset 0 so
/// the primary vtable pointer is shared; remaining bases follow at aligned
/// offsets; then fields. If the class has virtual methods but no
/// vtable-carrying primary base, an 8-byte vptr is placed at offset 0.
class ClassType : public Type {
public:
  const std::string &name() const { return Name; }

  /// Adds a direct base class. Must precede addField/finalizeLayout.
  void addBase(ClassType *Base);

  /// Adds a field; offset is assigned by finalizeLayout.
  void addField(std::string FieldName, Type *FieldTy);

  /// Declares a virtual method introduced or overridden by this class.
  /// Slot assignment and thunk creation happen in finalizeLayout /
  /// setSlotImpl.
  void addVirtualMethod(std::string MethodName, FunctionType *Signature);

  /// Computes base offsets, field offsets, vtable groups, size, alignment.
  void finalizeLayout();
  bool isLaidOut() const { return LaidOut; }

  const std::vector<BaseInfo> &bases() const { return Bases; }
  const std::vector<FieldInfo> &fields() const { return Fields; }

  /// Field lookup in this class only (no bases); returns null if absent.
  const FieldInfo *findOwnField(const std::string &FieldName) const;

  /// Field lookup including bases. On success returns the field and sets
  /// \p TotalOffset to its offset from the start of this class.
  const FieldInfo *findField(const std::string &FieldName,
                             uint64_t *TotalOffset) const;

  /// Offset of base class \p Base within this class, walking transitively.
  /// Returns false if \p Base is not a (transitive) base.
  bool offsetOfBase(const ClassType *Base, uint64_t *Offset) const;

  /// True if \p Other is this class or a transitive base of it.
  bool isBaseOrSelf(const ClassType *Other) const;

  bool hasVTable() const { return !VTables.empty(); }
  const std::vector<VTableGroup> &vtables() const { return VTables; }
  std::vector<VTableGroup> &vtablesMutable() { return VTables; }

  /// Finds the vtable group + slot for method \p MethodName with signature
  /// \p Signature. Returns false if no such virtual slot exists.
  bool findVirtualSlot(const std::string &MethodName,
                       const FunctionType *Signature, unsigned *GroupIndex,
                       unsigned *SlotIndex) const;

  uint64_t classSize() const {
    assert(LaidOut);
    return Size;
  }
  uint64_t classAlign() const {
    assert(LaidOut);
    return Align;
  }

  static bool classof(const Type *T) { return T->isClass(); }

private:
  friend class TypeContext;
  ClassType(std::string Name, TypeContext &Ctx)
      : Type(TypeKind::Class, Ctx), Name(std::move(Name)) {}

  struct DeclaredVirtual {
    std::string Name;
    FunctionType *Signature;
  };

  std::string Name;
  std::vector<BaseInfo> Bases;
  std::vector<FieldInfo> Fields;
  std::vector<DeclaredVirtual> DeclaredVirtuals;
  std::vector<VTableGroup> VTables;
  uint64_t Size = 0;
  uint64_t Align = 1;
  bool LaidOut = false;
};

/// Owns and uniques all types of a module.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  Type *voidTy() { return Scalars[size_t(TypeKind::Void)]; }
  Type *boolTy() { return Scalars[size_t(TypeKind::Bool)]; }
  Type *int8Ty() { return Scalars[size_t(TypeKind::Int8)]; }
  Type *int16Ty() { return Scalars[size_t(TypeKind::Int16)]; }
  Type *int32Ty() { return Scalars[size_t(TypeKind::Int32)]; }
  Type *int64Ty() { return Scalars[size_t(TypeKind::Int64)]; }
  Type *uint8Ty() { return Scalars[size_t(TypeKind::UInt8)]; }
  Type *uint16Ty() { return Scalars[size_t(TypeKind::UInt16)]; }
  Type *uint32Ty() { return Scalars[size_t(TypeKind::UInt32)]; }
  Type *uint64Ty() { return Scalars[size_t(TypeKind::UInt64)]; }
  Type *floatTy() { return Scalars[size_t(TypeKind::Float32)]; }
  Type *scalar(TypeKind Kind) {
    assert(size_t(Kind) < Scalars.size() && Scalars[size_t(Kind)]);
    return Scalars[size_t(Kind)];
  }

  PointerType *pointerTo(Type *Pointee);
  ArrayType *arrayOf(Type *Element, uint64_t Length);
  FunctionType *functionTy(Type *Return, std::vector<Type *> Params);

  /// Creates a named class type. Names are unique within a context.
  ClassType *createClass(std::string Name);
  ClassType *findClass(const std::string &Name) const;
  const std::vector<ClassType *> &classes() const { return ClassList; }

private:
  std::vector<std::unique_ptr<Type>> Owned;
  std::vector<Type *> Scalars;
  std::map<Type *, PointerType *> PointerTypes;
  std::map<std::pair<Type *, uint64_t>, ArrayType *> ArrayTypes;
  std::vector<FunctionType *> FunctionTypes;
  std::map<std::string, ClassType *> ClassMap;
  std::vector<ClassType *> ClassList;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_TYPE_H
