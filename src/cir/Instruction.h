//===- Instruction.h - Concord IR instructions ------------------*- C++ -*-===//
///
/// \file
/// A single generic Instruction class carrying an opcode, operand list,
/// successor/incoming block list, and a small attribute payload. Kernels are
/// small (tens to a few hundred device LoC, per Table 1 of the paper), so a
/// compact uniform representation beats a deep class hierarchy here.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_INSTRUCTION_H
#define CONCORD_CIR_INSTRUCTION_H

#include "cir/Value.h"
#include "support/SourceLoc.h"
#include <vector>

namespace concord {
namespace cir {

class BasicBlock;
class Function;

enum class Opcode {
  // Memory.
  Alloca, ///< Stack slot; attr = element count, AuxType = allocated type.
  Load,   ///< ops: [Ptr]; loads type() from a GPU-space address.
  Store,  ///< ops: [Val, Ptr].
  Memcpy, ///< ops: [Dst, Src]; attr = byte count.

  // Integer arithmetic.
  Add, Sub, Mul, SDiv, SRem, UDiv, URem,
  And, Or, Xor, Shl, AShr, LShr,
  // Float arithmetic.
  FAdd, FSub, FMul, FDiv,
  // Unary.
  Neg, FNeg, Not,

  ICmp,   ///< attr = ICmpPred.
  FCmp,   ///< attr = FCmpPred.
  Select, ///< ops: [Cond, TrueVal, FalseVal].
  Cast,   ///< attr = CastKind.

  // Addressing. Both produce pointers in the same representation as their
  // base operand (CPU space before SVM lowering).
  FieldAddr, ///< ops: [Base]; attr = byte offset into the object.
  IndexAddr, ///< ops: [Base, Index]; scales by pointee size of result type.

  // Calls.
  Call,      ///< Direct call; callee stored out-of-line; ops = args.
  VCall,     ///< Virtual call; ops = [Obj, args...]; lowered by Devirtualize.
  Intrinsic, ///< attr = IntrinsicId; ops = args.

  // Software SVM pointer translation (paper sections 3.1 / 4.1).
  CpuToGpu, ///< ops: [CpuAddr]; result = addr + svm_const.
  GpuToCpu, ///< ops: [GpuAddr]; result = addr - svm_const.

  // Device/query values.
  GlobalId,  ///< Work-item global index (the parallel loop index i).
  LocalId,   ///< Index within the work-group.
  GroupId,   ///< Work-group index.
  GroupSize, ///< Work-group size.
  NumCores,  ///< W: number of GPU cores (EUs); used by the L3OPT transform.
  LocalBase, ///< GPU address of this work-group's local scratch surface.

  Barrier, ///< Work-group barrier.

  // Control flow.
  Phi,    ///< ops: incoming values; blocks(): incoming blocks.
  Br,     ///< blocks: [Target].
  CondBr, ///< ops: [Cond]; blocks: [True, False].
  Ret,    ///< ops: [] or [Val].
  Trap,   ///< Abort lane (devirtualization fallthrough, div-by-zero, ...).
};

enum class ICmpPred { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
enum class FCmpPred { OEQ, ONE, OLT, OLE, OGT, OGE };

enum class CastKind {
  Trunc,
  SExt,
  ZExt,
  BitCast,  ///< Pointer <-> pointer reinterpretation.
  PtrToInt,
  IntToPtr,
  SIToFP,
  UIToFP,
  FPToSI,
  FPToUI,
};

enum class IntrinsicId {
  Sqrt,
  Rsqrt,
  Fabs,
  Fmin,
  Fmax,
  Pow,
  Exp,
  Log,
  Sin,
  Cos,
  Floor,
  IMin,
  IMax,
  IAbs,
};

const char *opcodeName(Opcode Op);
const char *intrinsicName(IntrinsicId Id);
const char *icmpPredName(ICmpPred P);
const char *fcmpPredName(FCmpPred P);

class Instruction : public Value {
public:
  Instruction(Opcode Op, Type *Ty) : Value(ValueKind::Instruction, Ty), Op(Op) {}

  Opcode opcode() const { return Op; }

  // Operands.
  unsigned numOperands() const { return Ops.size(); }
  Value *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Ops.size() && "operand index out of range");
    Ops[I] = V;
  }
  void addOperand(Value *V) { Ops.push_back(V); }
  const std::vector<Value *> &operands() const { return Ops; }
  /// Replaces every occurrence of \p From in the operand list with \p To.
  void replaceUsesOfWith(Value *From, Value *To);

  // Block references (successors for branches, incoming blocks for phis).
  unsigned numBlocks() const { return Blocks.size(); }
  BasicBlock *block(unsigned I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I];
  }
  void setBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size());
    Blocks[I] = BB;
  }
  void addBlock(BasicBlock *BB) { Blocks.push_back(BB); }
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }

  // Attribute payload accessors (meaning depends on the opcode).
  uint64_t attr() const { return Attr; }
  void setAttr(uint64_t A) { Attr = A; }
  ICmpPred icmpPred() const {
    assert(Op == Opcode::ICmp);
    return ICmpPred(Attr);
  }
  FCmpPred fcmpPred() const {
    assert(Op == Opcode::FCmp);
    return FCmpPred(Attr);
  }
  CastKind castKind() const {
    assert(Op == Opcode::Cast);
    return CastKind(Attr);
  }
  IntrinsicId intrinsicId() const {
    assert(Op == Opcode::Intrinsic);
    return IntrinsicId(Attr);
  }

  /// Allocated element type for Alloca.
  Type *auxType() const { return AuxType; }
  void setAuxType(Type *T) { AuxType = T; }

  /// Direct callee for Call.
  Function *callee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }

  /// Static class and slot for VCall.
  const ClassType *vcallClass() const { return VClass; }
  unsigned vcallGroup() const { return VGroup; }
  unsigned vcallSlot() const { return VSlot; }
  void setVCallTarget(const ClassType *C, unsigned Group, unsigned Slot) {
    VClass = C;
    VGroup = Group;
    VSlot = Slot;
  }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret ||
           Op == Opcode::Trap;
  }
  bool isPhi() const { return Op == Opcode::Phi; }
  bool isBinaryOp() const {
    return Op >= Opcode::Add && Op <= Opcode::FDiv;
  }
  bool isAddressTranslate() const {
    return Op == Opcode::CpuToGpu || Op == Opcode::GpuToCpu;
  }
  /// True for opcodes with no side effects whose result can be recomputed
  /// (eligible for CSE and DCE).
  bool isPure() const;
  /// True if the instruction reads or writes memory.
  bool touchesMemory() const {
    return Op == Opcode::Load || Op == Opcode::Store || Op == Opcode::Memcpy;
  }
  /// True if the instruction reads from memory.
  bool mayReadMemory() const {
    return Op == Opcode::Load || Op == Opcode::Memcpy;
  }
  /// True if the instruction writes memory.
  bool mayWriteMemory() const {
    return Op == Opcode::Store || Op == Opcode::Memcpy;
  }
  /// The address operand of a memory access: the source of a Load, the
  /// destination of a Store or Memcpy. Null for non-memory opcodes.
  Value *pointerOperand() const {
    switch (Op) {
    case Opcode::Load:
      return operand(0);
    case Opcode::Store:
      return operand(1);
    case Opcode::Memcpy:
      return operand(0);
    default:
      return nullptr;
    }
  }
  /// The value written by a Store, else null.
  Value *storedValue() const {
    return Op == Opcode::Store ? operand(0) : nullptr;
  }
  /// Bytes moved by a memory access: the accessed type's size for Load and
  /// Store, the byte-count attribute for Memcpy. Zero for other opcodes.
  uint64_t accessBytes() const {
    switch (Op) {
    case Opcode::Load:
      return type()->sizeInBytes();
    case Opcode::Store:
      return operand(0)->type()->sizeInBytes();
    case Opcode::Memcpy:
      return Attr;
    default:
      return 0;
    }
  }

  // Phi helpers.
  Value *incomingValue(unsigned I) const { return operand(I); }
  BasicBlock *incomingBlock(unsigned I) const { return block(I); }
  void addIncoming(Value *V, BasicBlock *BB) {
    assert(isPhi());
    addOperand(V);
    addBlock(BB);
  }
  /// Removes incoming entry \p K (value and block) from a phi.
  void removeIncoming(unsigned K) {
    assert(isPhi() && K < Ops.size() && Ops.size() == Blocks.size());
    Ops.erase(Ops.begin() + K);
    Blocks.erase(Blocks.begin() + K);
  }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::Instruction;
  }

private:
  Opcode Op;
  std::vector<Value *> Ops;
  std::vector<BasicBlock *> Blocks;
  uint64_t Attr = 0;
  Type *AuxType = nullptr;
  Function *Callee = nullptr;
  const ClassType *VClass = nullptr;
  unsigned VGroup = 0;
  unsigned VSlot = 0;
  BasicBlock *Parent = nullptr;
  SourceLoc Loc;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_INSTRUCTION_H
