//===- Value.h - Concord IR values ------------------------------*- C++ -*-===//
///
/// \file
/// Value is the base of everything an instruction can reference: arguments,
/// constants, function symbols, and other instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_VALUE_H
#define CONCORD_CIR_VALUE_H

#include "cir/Type.h"
#include "support/Casting.h"
#include <cstdint>
#include <string>

namespace concord {
namespace cir {

class Function;

enum class ValueKind {
  Argument,
  ConstantInt,
  ConstantFloat,
  ConstantNull,
  FunctionSymbol,
  Instruction,
};

class Value {
public:
  ValueKind valueKind() const { return VKind; }
  Type *type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  bool isConstant() const {
    return VKind == ValueKind::ConstantInt ||
           VKind == ValueKind::ConstantFloat ||
           VKind == ValueKind::ConstantNull ||
           VKind == ValueKind::FunctionSymbol;
  }

  virtual ~Value() = default;

protected:
  Value(ValueKind VKind, Type *Ty) : VKind(VKind), Ty(Ty) {}

private:
  ValueKind VKind;
  Type *Ty;
  std::string Name;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, unsigned Index, Function *Parent)
      : Value(ValueKind::Argument, Ty), Index(Index), Parent(Parent) {}

  unsigned index() const { return Index; }
  Function *parent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::Argument;
  }

private:
  unsigned Index;
  Function *Parent;
};

/// Integer (or bool) constant. The bit pattern is stored zero-extended to
/// 64 bits; signedness comes from the type.
class ConstantInt : public Value {
public:
  ConstantInt(Type *Ty, uint64_t Bits)
      : Value(ValueKind::ConstantInt, Ty), Bits(Bits) {
    assert(Ty->isInteger() && "integer constant needs an integer type");
  }

  uint64_t zext() const { return Bits; }
  int64_t sext() const {
    unsigned Width = unsigned(type()->sizeInBytes()) * 8;
    if (Width >= 64)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = 1ull << (Width - 1);
    return static_cast<int64_t>((Bits ^ SignBit) - SignBit);
  }
  bool isZero() const { return Bits == 0; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::ConstantInt;
  }

private:
  uint64_t Bits;
};

/// 32-bit float constant.
class ConstantFloat : public Value {
public:
  ConstantFloat(Type *Ty, float V)
      : Value(ValueKind::ConstantFloat, Ty), Val(V) {
    assert(Ty->isFloat());
  }

  float value() const { return Val; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::ConstantFloat;
  }

private:
  float Val;
};

/// Typed null pointer constant.
class ConstantNull : public Value {
public:
  explicit ConstantNull(PointerType *Ty)
      : Value(ValueKind::ConstantNull, Ty) {}

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::ConstantNull;
  }
};

/// The address-like symbol of a function, as stored in vtable slots in the
/// shared region and compared against by devirtualized call sequences
/// (paper section 3.2: "global symbols of relevant virtual functions").
/// The concrete 64-bit symbol value is assigned when the module is linked
/// into the runtime.
class FunctionSymbol : public Value {
public:
  FunctionSymbol(Type *U64Ty, Function *F)
      : Value(ValueKind::FunctionSymbol, U64Ty), F(F) {}

  Function *function() const { return F; }

  static bool classof(const Value *V) {
    return V->valueKind() == ValueKind::FunctionSymbol;
  }

private:
  Function *F;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_VALUE_H
