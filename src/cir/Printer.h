//===- Printer.h - Textual dump of Concord IR -------------------*- C++ -*-===//
///
/// \file
/// Human-readable IR dumps for tests and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_PRINTER_H
#define CONCORD_CIR_PRINTER_H

#include <string>

namespace concord {
namespace cir {

class Module;
class Function;

/// Renders a whole module (classes and functions).
std::string printModule(const Module &M);

/// Renders one function.
std::string printFunction(const Function &F);

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_PRINTER_H
