//===- Type.cpp -----------------------------------------------------------===//

#include "cir/Type.h"

using namespace concord;
using namespace concord::cir;

static uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Structural signature equality (types are uniqued except FunctionType).
static bool sameSignature(const FunctionType *A, const FunctionType *B) {
  if (A == B)
    return true;
  if (A->returnType() != B->returnType())
    return false;
  return A->params() == B->params();
}

uint64_t Type::sizeInBytes() const {
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Function:
    assert(false && "type has no size");
    return 0;
  case TypeKind::Bool:
  case TypeKind::Int8:
  case TypeKind::UInt8:
    return 1;
  case TypeKind::Int16:
  case TypeKind::UInt16:
    return 2;
  case TypeKind::Int32:
  case TypeKind::UInt32:
  case TypeKind::Float32:
    return 4;
  case TypeKind::Int64:
  case TypeKind::UInt64:
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    auto *AT = cast<ArrayType>(this);
    return AT->element()->sizeInBytes() * AT->length();
  }
  case TypeKind::Class:
    return cast<ClassType>(this)->classSize();
  }
  return 0;
}

uint64_t Type::alignInBytes() const {
  switch (Kind) {
  case TypeKind::Array:
    return cast<ArrayType>(this)->element()->alignInBytes();
  case TypeKind::Class:
    return cast<ClassType>(this)->classAlign();
  default:
    return sizeInBytes();
  }
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int8:
    return "i8";
  case TypeKind::Int16:
    return "i16";
  case TypeKind::Int32:
    return "i32";
  case TypeKind::Int64:
    return "i64";
  case TypeKind::UInt8:
    return "u8";
  case TypeKind::UInt16:
    return "u16";
  case TypeKind::UInt32:
    return "u32";
  case TypeKind::UInt64:
    return "u64";
  case TypeKind::Float32:
    return "float";
  case TypeKind::Pointer:
    return cast<PointerType>(this)->pointee()->str() + "*";
  case TypeKind::Array: {
    auto *AT = cast<ArrayType>(this);
    return AT->element()->str() + "[" + std::to_string(AT->length()) + "]";
  }
  case TypeKind::Class:
    return cast<ClassType>(this)->name();
  case TypeKind::Function: {
    auto *FT = cast<FunctionType>(this);
    std::string S = FT->returnType()->str() + "(";
    for (size_t I = 0; I < FT->params().size(); ++I) {
      if (I)
        S += ", ";
      S += FT->params()[I]->str();
    }
    return S + ")";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// ClassType
//===----------------------------------------------------------------------===//

void ClassType::addBase(ClassType *Base) {
  assert(!LaidOut && "class layout already finalized");
  assert(Base->isLaidOut() && "base classes must be laid out first");
  Bases.push_back({Base, 0});
}

void ClassType::addField(std::string FieldName, Type *FieldTy) {
  assert(!LaidOut && "class layout already finalized");
  Fields.push_back({std::move(FieldName), FieldTy, 0});
}

void ClassType::addVirtualMethod(std::string MethodName,
                                 FunctionType *Signature) {
  assert(!LaidOut && "class layout already finalized");
  DeclaredVirtuals.push_back({std::move(MethodName), Signature});
}

void ClassType::finalizeLayout() {
  assert(!LaidOut && "layout finalized twice");

  // Pick a primary base: the first vtable-carrying direct base, so the
  // derived class can share (extend) its vtable pointer at offset 0.
  int PrimaryIdx = -1;
  for (size_t I = 0; I < Bases.size(); ++I) {
    if (Bases[I].Base->hasVTable()) {
      PrimaryIdx = static_cast<int>(I);
      break;
    }
  }
  if (PrimaryIdx > 0)
    std::swap(Bases[0], Bases[size_t(PrimaryIdx)]);

  uint64_t Cursor = 0;
  bool HavePrimaryVTable = false;

  if (PrimaryIdx >= 0) {
    ClassType *Primary = Bases[0].Base;
    Bases[0].Offset = 0;
    // Inherit all of the primary base's vtable groups at their offsets.
    VTables = Primary->VTables;
    Cursor = Primary->classSize();
    Align = std::max(Align, Primary->classAlign());
    HavePrimaryVTable = true;
  } else if (!DeclaredVirtuals.empty()) {
    // This class introduces the vtable: reserve the vptr at offset 0.
    VTables.push_back(VTableGroup{0, {}});
    Cursor = 8;
    Align = std::max<uint64_t>(Align, 8);
    HavePrimaryVTable = true;
  }

  // Remaining bases at aligned offsets, carrying their vtable groups along
  // (shifted): these become the object's secondary vtable groups.
  for (size_t I = (PrimaryIdx >= 0 ? 1 : 0); I < Bases.size(); ++I) {
    ClassType *Base = Bases[I].Base;
    Cursor = alignUp(Cursor, Base->classAlign());
    Bases[I].Offset = Cursor;
    for (const VTableGroup &G : Base->VTables) {
      VTableGroup Shifted = G;
      Shifted.Offset += Cursor;
      VTables.push_back(std::move(Shifted));
    }
    Cursor += Base->classSize();
    Align = std::max(Align, Base->classAlign());
  }

  // Fields.
  for (FieldInfo &F : Fields) {
    uint64_t A = F.Ty->alignInBytes();
    Cursor = alignUp(Cursor, A);
    F.Offset = Cursor;
    Cursor += F.Ty->sizeInBytes();
    Align = std::max(Align, A);
  }

  // Place this class's virtual methods: overrides reuse the slot they
  // override (in every group that declares it); new virtuals append to the
  // primary group.
  for (const DeclaredVirtual &DV : DeclaredVirtuals) {
    bool Overrides = false;
    for (VTableGroup &G : VTables) {
      for (VTableSlot &S : G.Slots) {
        if (S.Name == DV.Name && sameSignature(S.Signature, DV.Signature)) {
          Overrides = true;
          // Impl is filled in by IR generation (possibly with a thunk for
          // non-zero group offsets).
          S.Impl = nullptr;
        }
      }
    }
    if (!Overrides) {
      assert(HavePrimaryVTable && "virtual method without a vtable");
      VTables.front().Slots.push_back({DV.Name, DV.Signature, nullptr});
    }
  }
  (void)HavePrimaryVTable;

  Size = std::max<uint64_t>(1, alignUp(Cursor, Align));
  LaidOut = true;
}

const FieldInfo *ClassType::findOwnField(const std::string &FieldName) const {
  for (const FieldInfo &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const FieldInfo *ClassType::findField(const std::string &FieldName,
                                      uint64_t *TotalOffset) const {
  if (const FieldInfo *F = findOwnField(FieldName)) {
    *TotalOffset = F->Offset;
    return F;
  }
  for (const BaseInfo &B : Bases) {
    uint64_t Inner = 0;
    if (const FieldInfo *F = B.Base->findField(FieldName, &Inner)) {
      *TotalOffset = B.Offset + Inner;
      return F;
    }
  }
  return nullptr;
}

bool ClassType::offsetOfBase(const ClassType *Base, uint64_t *Offset) const {
  if (Base == this) {
    *Offset = 0;
    return true;
  }
  for (const BaseInfo &B : Bases) {
    uint64_t Inner = 0;
    if (B.Base->offsetOfBase(Base, &Inner)) {
      *Offset = B.Offset + Inner;
      return true;
    }
  }
  return false;
}

bool ClassType::isBaseOrSelf(const ClassType *Other) const {
  uint64_t Ignored = 0;
  return offsetOfBase(Other, &Ignored);
}

bool ClassType::findVirtualSlot(const std::string &MethodName,
                                const FunctionType *Signature,
                                unsigned *GroupIndex,
                                unsigned *SlotIndex) const {
  for (unsigned G = 0; G < VTables.size(); ++G) {
    const VTableGroup &Group = VTables[G];
    for (unsigned S = 0; S < Group.Slots.size(); ++S) {
      const VTableSlot &Slot = Group.Slots[S];
      if (Slot.Name == MethodName && sameSignature(Slot.Signature, Signature)) {
        *GroupIndex = G;
        *SlotIndex = S;
        return true;
      }
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

namespace {
/// Concrete scalar type (no extra payload beyond the kind).
class ScalarType : public Type {
public:
  ScalarType(TypeKind Kind, TypeContext &Ctx) : Type(Kind, Ctx) {}
};
} // namespace

TypeContext::TypeContext() {
  Scalars.resize(size_t(TypeKind::Float32) + 1, nullptr);
  for (size_t K = 0; K <= size_t(TypeKind::Float32); ++K) {
    auto T = std::make_unique<ScalarType>(TypeKind(K), *this);
    Scalars[K] = T.get();
    Owned.push_back(std::move(T));
  }
}

PointerType *TypeContext::pointerTo(Type *Pointee) {
  auto It = PointerTypes.find(Pointee);
  if (It != PointerTypes.end())
    return It->second;
  auto *PT = new PointerType(Pointee, *this);
  Owned.emplace_back(PT);
  PointerTypes.emplace(Pointee, PT);
  return PT;
}

ArrayType *TypeContext::arrayOf(Type *Element, uint64_t Length) {
  auto Key = std::make_pair(Element, Length);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  auto *AT = new ArrayType(Element, Length, *this);
  Owned.emplace_back(AT);
  ArrayTypes.emplace(Key, AT);
  return AT;
}

FunctionType *TypeContext::functionTy(Type *Return,
                                      std::vector<Type *> Params) {
  for (FunctionType *FT : FunctionTypes)
    if (FT->returnType() == Return && FT->params() == Params)
      return FT;
  auto *FT = new FunctionType(Return, std::move(Params), *this);
  Owned.emplace_back(FT);
  FunctionTypes.push_back(FT);
  return FT;
}

ClassType *TypeContext::createClass(std::string Name) {
  assert(!ClassMap.count(Name) && "duplicate class name");
  auto *CT = new ClassType(Name, *this);
  Owned.emplace_back(CT);
  ClassMap.emplace(std::move(Name), CT);
  ClassList.push_back(CT);
  return CT;
}

ClassType *TypeContext::findClass(const std::string &Name) const {
  auto It = ClassMap.find(Name);
  return It == ClassMap.end() ? nullptr : It->second;
}
