//===- Printer.cpp --------------------------------------------------------===//

#include "cir/Printer.h"

#include "cir/Module.h"
#include "support/StringUtils.h"

#include <map>
#include <sstream>

using namespace concord;
using namespace concord::cir;

namespace {

class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {}

  std::string print() {
    std::ostringstream OS;
    OS << "func " << (F.isKernel() ? "kernel " : "") << "@" << F.name()
       << "(";
    for (unsigned I = 0; I < F.numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << nameOf(F.arg(I)) << ": " << F.arg(I)->type()->str();
    }
    OS << ") -> " << F.returnType()->str() << " {\n";
    for (BasicBlock *BB : F) {
      OS << blockName(BB) << ":\n";
      for (Instruction *I : *BB)
        OS << "  " << printInstr(I) << "\n";
    }
    OS << "}\n";
    return OS.str();
  }

private:
  std::string nameOf(const Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->sext());
    if (auto *CF = dyn_cast<ConstantFloat>(V))
      return formatString("%g", double(CF->value()));
    if (isa<ConstantNull>(V))
      return "null";
    if (auto *FS = dyn_cast<FunctionSymbol>(V))
      return "@sym(" + FS->function()->name() + ")";
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Name;
    if (!V->name().empty())
      Name = "%" + V->name();
    else
      Name = "%" + std::to_string(NextId++);
    Names.emplace(V, Name);
    return Name;
  }

  std::string blockName(const BasicBlock *BB) {
    auto It = BlockNames.find(BB);
    if (It != BlockNames.end())
      return It->second;
    std::string Name = BB->name().empty()
                           ? "bb" + std::to_string(BlockNames.size())
                           : BB->name() + "." +
                                 std::to_string(BlockNames.size());
    BlockNames.emplace(BB, Name);
    return Name;
  }

  std::string printInstr(const Instruction *I) {
    std::ostringstream OS;
    if (!I->type()->isVoid())
      OS << nameOf(I) << " = ";
    OS << opcodeName(I->opcode());
    switch (I->opcode()) {
    case Opcode::ICmp:
      OS << "." << icmpPredName(I->icmpPred());
      break;
    case Opcode::FCmp:
      OS << "." << fcmpPredName(I->fcmpPred());
      break;
    case Opcode::Intrinsic:
      OS << "." << intrinsicName(I->intrinsicId());
      break;
    case Opcode::FieldAddr:
      OS << "+" << I->attr();
      break;
    case Opcode::Alloca:
      OS << " " << I->auxType()->str();
      break;
    case Opcode::Call:
      OS << " @" << I->callee()->name();
      break;
    case Opcode::VCall:
      OS << " " << I->vcallClass()->name() << "/g" << I->vcallGroup() << "s"
         << I->vcallSlot();
      break;
    case Opcode::Memcpy:
      OS << " bytes=" << I->attr();
      break;
    default:
      break;
    }
    for (unsigned Op = 0; Op < I->numOperands(); ++Op)
      OS << (Op ? ", " : " ") << nameOf(I->operand(Op));
    if (I->opcode() == Opcode::Phi) {
      for (unsigned K = 0; K < I->numBlocks(); ++K)
        OS << " [" << nameOf(I->incomingValue(K)) << ", "
           << blockName(I->incomingBlock(K)) << "]";
    } else {
      for (unsigned K = 0; K < I->numBlocks(); ++K)
        OS << (K || I->numOperands() ? ", " : " ") << blockName(I->block(K));
    }
    if (!I->type()->isVoid())
      OS << " : " << I->type()->str();
    return OS.str();
  }

  const Function &F;
  std::map<const Value *, std::string> Names;
  std::map<const BasicBlock *, std::string> BlockNames;
  unsigned NextId = 0;
};

} // namespace

std::string concord::cir::printFunction(const Function &F) {
  return FunctionPrinter(F).print();
}

std::string concord::cir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module " << M.name() << "\n";
  for (const ClassType *C : M.types().classes()) {
    OS << "class " << C->name() << " size=" << C->classSize()
       << " align=" << C->classAlign() << " {\n";
    for (const BaseInfo &B : C->bases())
      OS << "  base " << B.Base->name() << " @" << B.Offset << "\n";
    for (const FieldInfo &F : C->fields())
      OS << "  field " << F.Name << ": " << F.Ty->str() << " @" << F.Offset
         << "\n";
    for (unsigned G = 0; G < C->vtables().size(); ++G) {
      const VTableGroup &Group = C->vtables()[G];
      OS << "  vtable g" << G << " @" << Group.Offset << ":";
      for (const VTableSlot &S : Group.Slots)
        OS << " " << S.Name << "=" << (S.Impl ? S.Impl->name() : "<null>");
      OS << "\n";
    }
    OS << "}\n";
  }
  for (const auto &F : M.functions())
    OS << printFunction(*F);
  return OS.str();
}
