//===- Function.cpp -------------------------------------------------------===//

#include "cir/Function.h"
#include "cir/Module.h"

using namespace concord;
using namespace concord::cir;

Function::Function(std::string Name, FunctionType *FTy, Module *Parent)
    : Name(std::move(Name)), FTy(FTy), Parent(Parent) {
  const std::vector<Type *> &Params = FTy->params();
  Args.reserve(Params.size());
  for (unsigned I = 0; I < Params.size(); ++I)
    Args.push_back(std::make_unique<Argument>(Params[I], I, this));
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       std::string BlockName) {
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (Blocks[I].get() == After) {
      auto It = Blocks.insert(
          Blocks.begin() + I + 1,
          std::make_unique<BasicBlock>(std::move(BlockName), this));
      return It->get();
    }
  }
  assert(false && "After block not in function");
  return nullptr;
}

void Function::eraseBlock(BasicBlock *BB) {
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (Blocks[I].get() == BB) {
      Blocks.erase(Blocks.begin() + I);
      return;
    }
  }
  assert(false && "block not in function");
}

void Function::replaceAllUsesWith(Value *From, Value *To) {
  assert(From != To && "RAUW with the same value");
  for (BasicBlock *BB : *this)
    for (Instruction *I : *BB)
      I->replaceUsesOfWith(From, To);
}
