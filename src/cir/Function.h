//===- Function.h - Concord IR functions ------------------------*- C++ -*-===//
///
/// \file
/// Functions own their arguments and basic blocks. The first block is the
/// entry block. Kernel entry functions (the compiled operator() bodies)
/// carry the IsKernel flag and follow the Figure 1 ABI: a single u64
/// argument holding the CPU virtual address of the Body object.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_FUNCTION_H
#define CONCORD_CIR_FUNCTION_H

#include "cir/BasicBlock.h"
#include <memory>
#include <string>
#include <vector>

namespace concord {
namespace cir {

class Module;

class Function {
public:
  Function(std::string Name, FunctionType *FTy, Module *Parent);

  const std::string &name() const { return Name; }
  FunctionType *functionType() const { return FTy; }
  Type *returnType() const { return FTy->returnType(); }
  Module *parent() const { return Parent; }

  unsigned numArgs() const { return Args.size(); }
  Argument *arg(unsigned I) const { return Args[I].get(); }

  bool empty() const { return Blocks.empty(); }
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no body");
    return Blocks.front().get();
  }
  BasicBlock *blockAt(size_t I) const { return Blocks[I].get(); }

  BasicBlock *createBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(std::move(BlockName), this));
    return Blocks.back().get();
  }

  /// Inserts \p NewBlock ownership after block \p After in layout order.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BlockName);

  /// Removes a block (must have no predecessors; callers fix the CFG).
  void eraseBlock(BasicBlock *BB);

  /// Layout-order iteration over raw block pointers.
  class iterator {
  public:
    iterator(const std::vector<std::unique_ptr<BasicBlock>> *Vec, size_t I)
        : Vec(Vec), I(I) {}
    BasicBlock *operator*() const { return (*Vec)[I].get(); }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const iterator &O) const { return I != O.I; }

  private:
    const std::vector<std::unique_ptr<BasicBlock>> *Vec;
    size_t I;
  };
  iterator begin() const { return iterator(&Blocks, 0); }
  iterator end() const { return iterator(&Blocks, Blocks.size()); }

  // Kernel/method metadata.
  bool isKernel() const { return Kernel; }
  void setKernel(bool K) { Kernel = K; }
  ClassType *methodOf() const { return MethodClass; }
  void setMethodOf(ClassType *C) { MethodClass = C; }
  bool isThunk() const { return Thunk; }
  void setThunk(bool T) { Thunk = T; }

  /// Replaces all uses of \p From with \p To across this function.
  void replaceAllUsesWith(Value *From, Value *To);

  /// Fresh value-name suffix for readable IR dumps.
  unsigned nextValueId() { return ValueCounter++; }

private:
  std::string Name;
  FunctionType *FTy;
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  bool Kernel = false;
  bool Thunk = false;
  ClassType *MethodClass = nullptr;
  unsigned ValueCounter = 0;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_FUNCTION_H
