//===- Instruction.cpp ----------------------------------------------------===//

#include "cir/Instruction.h"

using namespace concord;
using namespace concord::cir;

void Instruction::replaceUsesOfWith(Value *From, Value *To) {
  for (Value *&Op : Ops)
    if (Op == From)
      Op = To;
}

bool Instruction::isPure() const {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::LShr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::Neg:
  case Opcode::FNeg:
  case Opcode::Not:
  case Opcode::ICmp:
  case Opcode::FCmp:
  case Opcode::Select:
  case Opcode::Cast:
  case Opcode::FieldAddr:
  case Opcode::IndexAddr:
  case Opcode::CpuToGpu:
  case Opcode::GpuToCpu:
  case Opcode::GlobalId:
  case Opcode::LocalId:
  case Opcode::GroupId:
  case Opcode::GroupSize:
  case Opcode::NumCores:
  case Opcode::LocalBase:
  case Opcode::Intrinsic:
    return true;
  // SDiv/SRem/UDiv/URem can trap on zero; keep them anchored.
  default:
    return false;
  }
}

const char *concord::cir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca: return "alloca";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::Memcpy: return "memcpy";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::SDiv: return "sdiv";
  case Opcode::SRem: return "srem";
  case Opcode::UDiv: return "udiv";
  case Opcode::URem: return "urem";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Xor: return "xor";
  case Opcode::Shl: return "shl";
  case Opcode::AShr: return "ashr";
  case Opcode::LShr: return "lshr";
  case Opcode::FAdd: return "fadd";
  case Opcode::FSub: return "fsub";
  case Opcode::FMul: return "fmul";
  case Opcode::FDiv: return "fdiv";
  case Opcode::Neg: return "neg";
  case Opcode::FNeg: return "fneg";
  case Opcode::Not: return "not";
  case Opcode::ICmp: return "icmp";
  case Opcode::FCmp: return "fcmp";
  case Opcode::Select: return "select";
  case Opcode::Cast: return "cast";
  case Opcode::FieldAddr: return "fieldaddr";
  case Opcode::IndexAddr: return "indexaddr";
  case Opcode::Call: return "call";
  case Opcode::VCall: return "vcall";
  case Opcode::Intrinsic: return "intrinsic";
  case Opcode::CpuToGpu: return "cpu2gpu";
  case Opcode::GpuToCpu: return "gpu2cpu";
  case Opcode::GlobalId: return "globalid";
  case Opcode::LocalId: return "localid";
  case Opcode::GroupId: return "groupid";
  case Opcode::GroupSize: return "groupsize";
  case Opcode::NumCores: return "numcores";
  case Opcode::LocalBase: return "localbase";
  case Opcode::Barrier: return "barrier";
  case Opcode::Phi: return "phi";
  case Opcode::Br: return "br";
  case Opcode::CondBr: return "condbr";
  case Opcode::Ret: return "ret";
  case Opcode::Trap: return "trap";
  }
  return "?";
}

const char *concord::cir::intrinsicName(IntrinsicId Id) {
  switch (Id) {
  case IntrinsicId::Sqrt: return "sqrt";
  case IntrinsicId::Rsqrt: return "rsqrt";
  case IntrinsicId::Fabs: return "fabs";
  case IntrinsicId::Fmin: return "fmin";
  case IntrinsicId::Fmax: return "fmax";
  case IntrinsicId::Pow: return "pow";
  case IntrinsicId::Exp: return "exp";
  case IntrinsicId::Log: return "log";
  case IntrinsicId::Sin: return "sin";
  case IntrinsicId::Cos: return "cos";
  case IntrinsicId::Floor: return "floor";
  case IntrinsicId::IMin: return "imin";
  case IntrinsicId::IMax: return "imax";
  case IntrinsicId::IAbs: return "iabs";
  }
  return "?";
}

const char *concord::cir::icmpPredName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ: return "eq";
  case ICmpPred::NE: return "ne";
  case ICmpPred::SLT: return "slt";
  case ICmpPred::SLE: return "sle";
  case ICmpPred::SGT: return "sgt";
  case ICmpPred::SGE: return "sge";
  case ICmpPred::ULT: return "ult";
  case ICmpPred::ULE: return "ule";
  case ICmpPred::UGT: return "ugt";
  case ICmpPred::UGE: return "uge";
  }
  return "?";
}

const char *concord::cir::fcmpPredName(FCmpPred P) {
  switch (P) {
  case FCmpPred::OEQ: return "oeq";
  case FCmpPred::ONE: return "one";
  case FCmpPred::OLT: return "olt";
  case FCmpPred::OLE: return "ole";
  case FCmpPred::OGT: return "ogt";
  case FCmpPred::OGE: return "oge";
  }
  return "?";
}
