//===- Module.h - Concord IR module -----------------------------*- C++ -*-===//
///
/// \file
/// A Module is one compiled Concord kernel program: its types, functions,
/// and uniqued constants. It corresponds to the OpenCL program embedded in
/// the host executable (gpu_program_t in section 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CIR_MODULE_H
#define CONCORD_CIR_MODULE_H

#include "cir/Function.h"
#include <map>
#include <memory>

namespace concord {
namespace cir {

class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }
  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

  Function *createFunction(std::string FnName, FunctionType *FTy);
  Function *findFunction(const std::string &FnName) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  // Uniqued constants (owned by the module).
  ConstantInt *constInt(Type *Ty, uint64_t Bits);
  ConstantInt *constI32(int32_t V) {
    return constInt(Types.int32Ty(), uint64_t(uint32_t(V)));
  }
  ConstantInt *constU64(uint64_t V) { return constInt(Types.uint64Ty(), V); }
  ConstantInt *constBool(bool V) { return constInt(Types.boolTy(), V); }
  ConstantFloat *constFloat(float V);
  ConstantNull *nullPtr(PointerType *Ty);
  FunctionSymbol *functionSymbol(Function *F);

  /// Stable symbol index of a function in this module (used as its 64-bit
  /// symbol value when vtables are materialized in the shared region).
  unsigned symbolIndexOf(const Function *F) const;

  /// Total number of IR instructions (used by the Figure 6 statistics).
  size_t countInstructions() const;

private:
  std::string Name;
  TypeContext Types;
  std::vector<std::unique_ptr<Function>> Functions;
  std::map<std::string, Function *> FunctionMap;

  std::vector<std::unique_ptr<Value>> OwnedConstants;
  std::map<std::pair<Type *, uint64_t>, ConstantInt *> IntConstants;
  std::map<uint32_t, ConstantFloat *> FloatConstants;
  std::map<PointerType *, ConstantNull *> NullConstants;
  std::map<Function *, FunctionSymbol *> FunctionSymbols;
};

} // namespace cir
} // namespace concord

#endif // CONCORD_CIR_MODULE_H
