//===- Module.cpp ---------------------------------------------------------===//

#include "cir/Module.h"

#include <bit>

using namespace concord;
using namespace concord::cir;

Function *Module::createFunction(std::string FnName, FunctionType *FTy) {
  assert(!FunctionMap.count(FnName) && "duplicate function name");
  auto F = std::make_unique<Function>(FnName, FTy, this);
  Function *Raw = F.get();
  FunctionMap.emplace(std::move(FnName), Raw);
  Functions.push_back(std::move(F));
  return Raw;
}

Function *Module::findFunction(const std::string &FnName) const {
  auto It = FunctionMap.find(FnName);
  return It == FunctionMap.end() ? nullptr : It->second;
}

ConstantInt *Module::constInt(Type *Ty, uint64_t Bits) {
  // Canonicalize to the type's width so equal values unify.
  unsigned Bytes = unsigned(Ty->sizeInBytes());
  if (Bytes < 8)
    Bits &= (1ull << (Bytes * 8)) - 1;
  auto Key = std::make_pair(Ty, Bits);
  auto It = IntConstants.find(Key);
  if (It != IntConstants.end())
    return It->second;
  auto C = std::make_unique<ConstantInt>(Ty, Bits);
  ConstantInt *Raw = C.get();
  OwnedConstants.push_back(std::move(C));
  IntConstants.emplace(Key, Raw);
  return Raw;
}

ConstantFloat *Module::constFloat(float V) {
  uint32_t Key = std::bit_cast<uint32_t>(V);
  auto It = FloatConstants.find(Key);
  if (It != FloatConstants.end())
    return It->second;
  auto C = std::make_unique<ConstantFloat>(Types.floatTy(), V);
  ConstantFloat *Raw = C.get();
  OwnedConstants.push_back(std::move(C));
  FloatConstants.emplace(Key, Raw);
  return Raw;
}

ConstantNull *Module::nullPtr(PointerType *Ty) {
  auto It = NullConstants.find(Ty);
  if (It != NullConstants.end())
    return It->second;
  auto C = std::make_unique<ConstantNull>(Ty);
  ConstantNull *Raw = C.get();
  OwnedConstants.push_back(std::move(C));
  NullConstants.emplace(Ty, Raw);
  return Raw;
}

FunctionSymbol *Module::functionSymbol(Function *F) {
  auto It = FunctionSymbols.find(F);
  if (It != FunctionSymbols.end())
    return It->second;
  auto C = std::make_unique<FunctionSymbol>(Types.uint64Ty(), F);
  FunctionSymbol *Raw = C.get();
  OwnedConstants.push_back(std::move(C));
  FunctionSymbols.emplace(F, Raw);
  return Raw;
}

unsigned Module::symbolIndexOf(const Function *F) const {
  for (unsigned I = 0; I < Functions.size(); ++I)
    if (Functions[I].get() == F)
      return I;
  assert(false && "function not in module");
  return ~0u;
}

size_t Module::countInstructions() const {
  size_t N = 0;
  for (const auto &F : Functions)
    for (BasicBlock *BB : *F)
      N += BB->size();
  return N;
}
