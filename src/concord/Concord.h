//===- Concord.h - The Concord heterogeneous C++ API ------------*- C++ -*-===//
///
/// \file
/// Public programming interface, modelled on the paper's section 2:
///
/// \code
///   template <typename Body>
///   LaunchReport parallel_for_hetero(int n, Body &b, bool on_cpu);
///   template <typename Body>
///   LaunchReport parallel_reduce_hetero(int n, Body &b, bool on_cpu);
/// \endcode
///
/// A Body type provides:
///  * `void operator()(int i)` - the loop body, executed natively on the
///    host for the reference/fallback path;
///  * `void join(Body &other)` - for reductions only;
///  * `static const char *kernelSource()` - the CKL device code for the
///    body class (the role Clang played in the paper's static compiler:
///    here the kernel language compiler consumes this source at first
///    launch and caches the JIT result, section 3.4);
///  * `static const char *kernelClassName()` - the body class name in that
///    source.
///
/// The host Body object must live in the shared region
/// (`svm::SharedRegion::create<Body>(...)`) and its data layout must match
/// the kernel class field-for-field (both sides use standard C++ layout
/// rules; `tests/EquivalenceTests.cpp` asserts this with offsetof checks
/// for every workload).
///
/// As in TBB (and the paper): iteration order is unspecified, reductions
/// are not deterministic in floating point, and a freshly copied Body must
/// behave as a reduction identity.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_CONCORD_H
#define CONCORD_CONCORD_H

#include "runtime/Runtime.h"

namespace concord {

using runtime::Device;
using runtime::KernelSpec;
using runtime::LaunchReport;
using runtime::Runtime;

namespace detail {

template <typename Body> KernelSpec specOf() {
  return KernelSpec{Body::kernelSource(), Body::kernelClassName()};
}

/// Native fallback: run the functor on the host thread pool (used when the
/// kernel uses features outside the GPU subset, section 2.1).
template <typename Body>
void runNative(Runtime &RT, int N, Body &B) {
  RT.pool().parallelFor(N, [&B](int64_t I) { B(int(I)); });
}

} // namespace detail

/// Offloads `b(i)` for i in [0, n). With \p OnCpu the multicore CPU model
/// executes instead. Memory is consistent before and after the call
/// (section 2.3): the region is pinned for the launch and all effects are
/// applied to the shared objects directly.
template <typename Body>
LaunchReport parallel_for_hetero(Runtime &RT, int N, Body &B,
                                 bool OnCpu = false) {
  LaunchReport Rep = RT.offload(detail::specOf<Body>(), N, &B, OnCpu);
  if (Rep.FellBack)
    detail::runNative(RT, N, B);
  return Rep;
}

/// Offloads a reduction. Device work-groups tree-reduce private copies of
/// \p B with `join` (section 3.3); the runtime then joins the per-group
/// partials into \p B sequentially using the host `join`.
template <typename Body>
LaunchReport parallel_reduce_hetero(Runtime &RT, int N, Body &B,
                                    bool OnCpu = false) {
  runtime::HostJoinFn Join = [](void *Into, void *From) {
    static_cast<Body *>(Into)->join(*static_cast<Body *>(From));
  };
  LaunchReport Rep = RT.offloadReduce(detail::specOf<Body>(), N, &B,
                                      sizeof(Body), Join, OnCpu);
  if (Rep.FellBack)
    detail::runNative(RT, N, B); // Sequential semantics: B accumulates all.
  return Rep;
}

/// Installs device vtable pointers into a polymorphic shared object of
/// dynamic type \p ClassName (section 3.2). Host code calls this for every
/// virtual-dispatch object it allocates in the shared region.
template <typename Body>
bool install_vptrs(Runtime &RT, void *Obj, const std::string &ClassName) {
  return RT.installVPtrs(detail::specOf<Body>(), Obj, ClassName);
}

} // namespace concord

#endif // CONCORD_CONCORD_H
