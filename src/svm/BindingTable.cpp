//===- BindingTable.cpp ---------------------------------------------------===//

#include "svm/BindingTable.h"
#include "svm/SharedRegion.h"

#include <cassert>

using namespace concord;
using namespace concord::svm;

BindingTable::BindingTable(SharedRegion &Region) {
  Surface S;
  S.Name = "svm-shared-region";
  S.Kind = SurfaceKind::Global;
  S.GpuBase = Region.gpuBase();
  S.HostBase = static_cast<char *>(Region.hostFromGpu(Region.gpuBase(), 0));
  S.Size = Region.capacity();
  Surfaces.push_back(std::move(S));
}

BindingTable::BindingTable(std::string Name, uint64_t Base, void *HostBase,
                           size_t Size) {
  Surface S;
  S.Name = std::move(Name);
  S.Kind = SurfaceKind::Global;
  S.GpuBase = Base;
  S.HostBase = static_cast<char *>(HostBase);
  S.Size = Size;
  Surfaces.push_back(std::move(S));
}

unsigned BindingTable::bindSurface(std::string Name, SurfaceKind Kind,
                                   uint64_t GpuBase, void *HostBase,
                                   size_t Size) {
  assert(HostBase && "binding a surface with no backing memory");
  Surface S;
  S.Name = std::move(Name);
  S.Kind = Kind;
  S.GpuBase = GpuBase;
  S.HostBase = static_cast<char *>(HostBase);
  S.Size = Size;
  Surfaces.push_back(std::move(S));
  return Surfaces.size() - 1;
}

void BindingTable::resetTransientSurfaces() {
  assert(!Surfaces.empty());
  Surfaces.resize(1);
}

void *BindingTable::resolve(uint64_t GpuAddr, size_t AccessSize) const {
  const Surface *Ignored = nullptr;
  return resolve(GpuAddr, AccessSize, &Ignored);
}

void *BindingTable::resolve(uint64_t GpuAddr, size_t AccessSize,
                            const Surface **MatchedSurface) const {
  for (const Surface &S : Surfaces) {
    if (S.containsGpu(GpuAddr, AccessSize)) {
      *MatchedSurface = &S;
      return S.HostBase + (GpuAddr - S.GpuBase);
    }
  }
  *MatchedSurface = nullptr;
  return nullptr;
}
