//===- SharedRegion.cpp ---------------------------------------------------===//

#include "svm/SharedRegion.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace concord;
using namespace concord::svm;

static uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

SharedRegion::SharedRegion(size_t CapacityBytes, uint64_t GpuBase) {
  Capacity = alignUp(CapacityBytes, 4096);
  Arena = static_cast<char *>(std::aligned_alloc(4096, Capacity));
  assert(Arena && "failed to reserve shared region arena");
  CpuBaseAddr = reinterpret_cast<uint64_t>(Arena);
  GpuBaseAddr = GpuBase;
  FreeBlocks.emplace(0, Capacity);
}

SharedRegion::~SharedRegion() {
  assert(!isPinned() && "destroying a region pinned by a kernel launch");
  std::free(Arena);
}

void *SharedRegion::allocate(size_t Size, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  if (Align < 16)
    Align = 16;
  if (Size == 0)
    Size = 1;

  // First fit: find a free block that can hold header + aligned payload.
  for (auto It = FreeBlocks.begin(); It != FreeBlocks.end(); ++It) {
    uint64_t BlockOff = It->first;
    uint64_t BlockSize = It->second;
    uint64_t PayloadOff =
        alignUp(BlockOff + sizeof(AllocHeader), Align);
    uint64_t End = PayloadOff + Size;
    if (End > BlockOff + BlockSize)
      continue;

    FreeBlocks.erase(It);
    // Return the unused tail to the free list if it is worth tracking.
    uint64_t UsedEnd = alignUp(End, 16);
    uint64_t BlockEnd = BlockOff + BlockSize;
    uint64_t ConsumedSize = BlockSize;
    if (BlockEnd - UsedEnd >= 64) {
      FreeBlocks.emplace(UsedEnd, BlockEnd - UsedEnd);
      ConsumedSize = UsedEnd - BlockOff;
    }

    auto *Header = reinterpret_cast<AllocHeader *>(
        Arena + PayloadOff - sizeof(AllocHeader));
    Header->BlockOff = BlockOff;
    Header->BlockSize = ConsumedSize;
    Header->Magic = HeaderMagic;

    Stats.BytesAllocated += ConsumedSize;
    if (Stats.BytesAllocated > Stats.PeakBytes)
      Stats.PeakBytes = Stats.BytesAllocated;
    ++Stats.NumAllocs;
    return Arena + PayloadOff;
  }

  ++Stats.FailedAllocs;
  return nullptr;
}

void SharedRegion::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  assert(contains(Ptr) && "freeing a pointer outside the shared region");
  auto *Header = reinterpret_cast<AllocHeader *>(static_cast<char *>(Ptr) -
                                                 sizeof(AllocHeader));
  assert(Header->Magic == HeaderMagic && "corrupt or double-freed block");
  Header->Magic = 0;

  uint64_t BlockOff = Header->BlockOff;
  uint64_t BlockSize = Header->BlockSize;
  assert(Stats.BytesAllocated >= BlockSize && "allocator accounting broke");
  Stats.BytesAllocated -= BlockSize;
  ++Stats.NumFrees;

  // Coalesce with the following block.
  auto Next = FreeBlocks.lower_bound(BlockOff);
  if (Next != FreeBlocks.end() && Next->first == BlockOff + BlockSize) {
    BlockSize += Next->second;
    Next = FreeBlocks.erase(Next);
  }
  // Coalesce with the preceding block.
  if (Next != FreeBlocks.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == BlockOff) {
      BlockOff = Prev->first;
      BlockSize += Prev->second;
      FreeBlocks.erase(Prev);
    }
  }
  FreeBlocks.emplace(BlockOff, BlockSize);
}

MemRange SharedRegion::allocationExtent(const void *Ptr) const {
  if (!contains(Ptr))
    return range();
  uint64_t PayloadOff = reinterpret_cast<uint64_t>(Ptr) - CpuBaseAddr;
  if (PayloadOff < sizeof(AllocHeader))
    return range();
  const auto *Header = reinterpret_cast<const AllocHeader *>(
      Arena + PayloadOff - sizeof(AllocHeader));
  if (Header->Magic != HeaderMagic)
    return range();
  uint64_t BlockOff = Header->BlockOff;
  uint64_t BlockSize = Header->BlockSize;
  if (BlockOff >= Capacity || BlockSize > Capacity ||
      BlockOff + BlockSize > Capacity || PayloadOff <= BlockOff ||
      PayloadOff >= BlockOff + BlockSize)
    return range();
  return {CpuBaseAddr + PayloadOff, CpuBaseAddr + BlockOff + BlockSize};
}

void *SharedRegion::hostFromGpu(uint64_t GpuAddr, size_t AccessSize) const {
  if (GpuAddr < GpuBaseAddr)
    return nullptr;
  uint64_t Off = GpuAddr - GpuBaseAddr;
  if (Off + AccessSize > Capacity)
    return nullptr;
  return Arena + Off;
}

void SharedRegion::unpin() {
  unsigned Was = PinCount.fetch_sub(1, std::memory_order_relaxed);
  assert(Was > 0 && "unbalanced unpin");
  (void)Was;
}

size_t SharedRegion::freeBytes() const {
  size_t Total = 0;
  for (const auto &[Off, Size] : FreeBlocks)
    Total += Size;
  return Total;
}

static SharedRegion *GlobalDefaultRegion = nullptr;

SharedRegion *concord::svm::setDefaultRegion(SharedRegion *Region) {
  SharedRegion *Previous = GlobalDefaultRegion;
  GlobalDefaultRegion = Region;
  return Previous;
}

SharedRegion *concord::svm::defaultRegion() { return GlobalDefaultRegion; }

void *concord::svm::svmMalloc(size_t Size) {
  assert(GlobalDefaultRegion && "svmMalloc with no default shared region");
  return GlobalDefaultRegion->allocate(Size);
}

void concord::svm::svmFree(void *Ptr) {
  assert(GlobalDefaultRegion && "svmFree with no default shared region");
  GlobalDefaultRegion->deallocate(Ptr);
}
