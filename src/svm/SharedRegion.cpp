//===- SharedRegion.cpp ---------------------------------------------------===//

#include "svm/SharedRegion.h"
#include "support/Env.h"
#include "svm/ObjectStore.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace concord;
using namespace concord::svm;

static uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

static ArenaMode resolveMode(ArenaMode Mode) {
  if (Mode != ArenaMode::Auto)
    return Mode;
  return support::env::svmLegacyArena() ? ArenaMode::Legacy
                                        : ArenaMode::Store;
}

SharedRegion::SharedRegion(size_t CapacityBytes, uint64_t GpuBase,
                           ArenaMode Mode) {
  GpuBaseAddr = GpuBase;
  if (resolveMode(Mode) == ArenaMode::Store) {
    Capacity = ObjectStore::roundCapacity(CapacityBytes);
    // Region starts must be 64 KiB-aligned so buddy blocks' natural
    // alignment carries through to absolute addresses.
    Arena = static_cast<char *>(
        std::aligned_alloc(ObjectStore::MaxAlign, Capacity));
    assert(Arena && "failed to reserve shared region arena");
    CpuBaseAddr = reinterpret_cast<uint64_t>(Arena);
    Store = std::make_unique<ObjectStore>(Arena, Capacity);
    return;
  }
  Capacity = alignUp(CapacityBytes, 4096);
  // Same 64 KiB base alignment as the store span, so offset-relative
  // alignment implies absolute alignment in both modes.
  Arena = static_cast<char *>(std::aligned_alloc(
      ObjectStore::MaxAlign, alignUp(Capacity, ObjectStore::MaxAlign)));
  assert(Arena && "failed to reserve shared region arena");
  CpuBaseAddr = reinterpret_cast<uint64_t>(Arena);
  FreeBlocks.emplace(0, Capacity);
}

SharedRegion::~SharedRegion() {
  assert(!isPinned() && "destroying a region pinned by a kernel launch");
  Store.reset();
  std::free(Arena);
}

void SharedRegion::recordPoolAlloc(void *Ptr, size_t Size) {
  if (Size == 0)
    Size = 1;
  std::lock_guard<std::mutex> Lock(PoolMutex);
  PoolSizes[reinterpret_cast<uint64_t>(Ptr)] = Size;
  MemRange R = MemRange::ofBytes(Ptr, Size);
  auto [It, Fresh] = PoolHulls.emplace(Size, R);
  if (!Fresh) {
    It->second.Begin = std::min(It->second.Begin, R.Begin);
    It->second.End = std::max(It->second.End, R.End);
  }
}

void *SharedRegion::allocate(size_t Size, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  if (Store) {
    void *P = Store->allocate(Size, Align, RegionClass::Heap);
    if (P)
      recordPoolAlloc(P, Size);
    return P;
  }
  if (Align < 16)
    Align = 16;
  if (Size == 0)
    Size = 1;

  std::lock_guard<std::mutex> Lock(LegacyMutex);
  // First fit: find a free block that can hold header + aligned payload.
  for (auto It = FreeBlocks.begin(); It != FreeBlocks.end(); ++It) {
    uint64_t BlockOff = It->first;
    uint64_t BlockSize = It->second;
    uint64_t PayloadOff =
        alignUp(BlockOff + sizeof(AllocHeader), Align);
    uint64_t End = PayloadOff + Size;
    if (End > BlockOff + BlockSize)
      continue;

    FreeBlocks.erase(It);
    // Return the unused tail to the free list if it is worth tracking.
    uint64_t UsedEnd = alignUp(End, 16);
    uint64_t BlockEnd = BlockOff + BlockSize;
    uint64_t ConsumedSize = BlockSize;
    if (BlockEnd - UsedEnd >= 64) {
      FreeBlocks.emplace(UsedEnd, BlockEnd - UsedEnd);
      ConsumedSize = UsedEnd - BlockOff;
    }

    auto *Header = reinterpret_cast<AllocHeader *>(
        Arena + PayloadOff - sizeof(AllocHeader));
    Header->BlockOff = BlockOff;
    Header->BlockSize = ConsumedSize;
    Header->Magic = HeaderMagic;
    LiveBlocks[PayloadOff] = BlockOff + ConsumedSize;

    Stats.BytesAllocated += ConsumedSize;
    if (Stats.BytesAllocated > Stats.PeakBytes)
      Stats.PeakBytes = Stats.BytesAllocated;
    ++Stats.NumAllocs;
    recordPoolAlloc(Arena + PayloadOff, Size);
    return Arena + PayloadOff;
  }

  ++Stats.FailedAllocs;
  return nullptr;
}

void *SharedRegion::allocateShadow(size_t Size, size_t Align) {
  if (Store)
    return Store->allocate(Size, Align, RegionClass::Shadow);
  return allocate(Size, Align);
}

void SharedRegion::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  assert(contains(Ptr) && "freeing a pointer outside the shared region");
  {
    // Drop the size-class membership; the hull deliberately stays (a pool
    // summary may only get looser).
    std::lock_guard<std::mutex> Lock(PoolMutex);
    PoolSizes.erase(reinterpret_cast<uint64_t>(Ptr));
  }
  if (Store) {
    Store->deallocate(Ptr);
    return;
  }
  auto *Header = reinterpret_cast<AllocHeader *>(static_cast<char *>(Ptr) -
                                                 sizeof(AllocHeader));
  assert(Header->Magic == HeaderMagic && "corrupt or double-freed block");
  Header->Magic = 0;

  uint64_t BlockOff = Header->BlockOff;
  uint64_t BlockSize = Header->BlockSize;

  std::lock_guard<std::mutex> Lock(LegacyMutex);
  assert(Stats.BytesAllocated >= BlockSize && "allocator accounting broke");
  Stats.BytesAllocated -= BlockSize;
  ++Stats.NumFrees;
  LiveBlocks.erase(reinterpret_cast<uint64_t>(Ptr) - CpuBaseAddr);

  // Coalesce with the following block.
  auto Next = FreeBlocks.lower_bound(BlockOff);
  if (Next != FreeBlocks.end() && Next->first == BlockOff + BlockSize) {
    BlockSize += Next->second;
    Next = FreeBlocks.erase(Next);
  }
  // Coalesce with the preceding block.
  if (Next != FreeBlocks.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == BlockOff) {
      BlockOff = Prev->first;
      BlockSize += Prev->second;
      FreeBlocks.erase(Prev);
    }
  }
  FreeBlocks.emplace(BlockOff, BlockSize);
}

MemRange SharedRegion::allocationExtent(const void *Ptr) const {
  if (!contains(Ptr))
    return range();
  if (Store) {
    MemRange Out;
    switch (Store->allocationExtent(Ptr, &Out)) {
    case ExtentResult::Exact:
      return Out;
    case ExtentResult::Stale:
      // The allocation was reclaimed wholesale (generation bump); an
      // empty range makes every access through the stale pointer fail
      // containment checks instead of silently charging the region.
      return {0, 0};
    case ExtentResult::Unknown:
      return range();
    }
    return range();
  }
  uint64_t Off = reinterpret_cast<uint64_t>(Ptr) - CpuBaseAddr;
  std::lock_guard<std::mutex> Lock(LegacyMutex);
  // Attribute interior pointers to their allocation via the live map — a
  // pointer into the middle of a live block bounds accesses by that block,
  // not the whole region.
  auto It = LiveBlocks.upper_bound(Off);
  if (It == LiveBlocks.begin())
    return range();
  --It;
  if (Off >= It->second)
    return range();
  return {CpuBaseAddr + Off, CpuBaseAddr + It->second};
}

MemRange SharedRegion::poolExtent(const void *Seed) const {
  if (!contains(Seed))
    return range();
  std::lock_guard<std::mutex> Lock(PoolMutex);
  auto SizeIt = PoolSizes.find(reinterpret_cast<uint64_t>(Seed));
  if (SizeIt == PoolSizes.end())
    return range(); // Interior/foreign seed: whole region, sound.
  auto HullIt = PoolHulls.find(SizeIt->second);
  if (HullIt == PoolHulls.end())
    return range();
  return HullIt->second;
}

void *SharedRegion::hostFromGpu(uint64_t GpuAddr, size_t AccessSize) const {
  if (GpuAddr < GpuBaseAddr)
    return nullptr;
  uint64_t Off = GpuAddr - GpuBaseAddr;
  if (Off + AccessSize > Capacity)
    return nullptr;
  return Arena + Off;
}

void SharedRegion::unpin() {
  unsigned Was = PinCount.fetch_sub(1, std::memory_order_relaxed);
  assert(Was > 0 && "unbalanced unpin");
  (void)Was;
}

RegionStats SharedRegion::stats() const {
  if (Store)
    return Store->aggregateStats();
  std::lock_guard<std::mutex> Lock(LegacyMutex);
  return Stats;
}

size_t SharedRegion::freeBytes() const {
  if (Store)
    return Store->freeBytes();
  std::lock_guard<std::mutex> Lock(LegacyMutex);
  size_t Total = 0;
  for (const auto &[Off, Size] : FreeBlocks)
    Total += Size;
  return Total;
}

size_t SharedRegion::freeBlockCount() const {
  if (Store)
    return Store->freeBlockCount();
  std::lock_guard<std::mutex> Lock(LegacyMutex);
  return FreeBlocks.size();
}

static SharedRegion *GlobalDefaultRegion = nullptr;

SharedRegion *concord::svm::setDefaultRegion(SharedRegion *Region) {
  SharedRegion *Previous = GlobalDefaultRegion;
  GlobalDefaultRegion = Region;
  return Previous;
}

SharedRegion *concord::svm::defaultRegion() { return GlobalDefaultRegion; }

void *concord::svm::svmMalloc(size_t Size) {
  assert(GlobalDefaultRegion && "svmMalloc with no default shared region");
  return GlobalDefaultRegion->allocate(Size);
}

void concord::svm::svmFree(void *Ptr) {
  assert(GlobalDefaultRegion && "svmFree with no default shared region");
  GlobalDefaultRegion->deallocate(Ptr);
}
