//===- BindingTable.h - GPU surface binding table --------------*- C++ -*-===//
///
/// \file
/// On the modelled processor the GPU's virtual address space is segmented
/// into surfaces referenced by binding table entries (paper section 3.1). A
/// GPU pointer is conceptually a binding table index plus an offset; Concord
/// arranges for the entire shared region to be one surface whose entry is
/// constant for the lifetime of the program, which is what makes the cheap
/// add-a-constant pointer translation valid.
///
/// The simulator resolves every GPU memory access through this table, so an
/// access outside any bound surface is caught deterministically (the
/// simulated equivalent of a GPU page fault).
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_SVM_BINDINGTABLE_H
#define CONCORD_SVM_BINDINGTABLE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace concord {
namespace svm {

class SharedRegion;

/// Kinds of memory a surface can back; the simulator charges different
/// access costs per kind.
enum class SurfaceKind {
  Global,      ///< The shared SVM region (GPU L3 + DRAM behind it).
  LocalScratch ///< Work-group local memory used by reductions.
};

struct Surface {
  std::string Name;
  SurfaceKind Kind;
  uint64_t GpuBase = 0;
  char *HostBase = nullptr;
  size_t Size = 0;

  bool containsGpu(uint64_t GpuAddr, size_t AccessSize) const {
    return GpuAddr >= GpuBase && GpuAddr - GpuBase + AccessSize <= Size;
  }
};

/// The simulated binding table: an ordered list of surfaces.
class BindingTable {
public:
  /// Binds the shared region as surface index 0 (the constant entry).
  explicit BindingTable(SharedRegion &Region);

  /// Generic constructor: surface 0 at an arbitrary base. The CPU device
  /// model uses this to view the shared region at its CPU virtual base
  /// (untranslated addresses resolve directly).
  BindingTable(std::string Name, uint64_t Base, void *HostBase, size_t Size);

  /// Binds an additional surface; returns its binding index.
  unsigned bindSurface(std::string Name, SurfaceKind Kind, uint64_t GpuBase,
                       void *HostBase, size_t Size);

  /// Removes all surfaces except the constant shared-region entry.
  void resetTransientSurfaces();

  /// Resolves a GPU virtual address to a host pointer, or null when the
  /// access does not land fully inside any surface.
  void *resolve(uint64_t GpuAddr, size_t AccessSize) const;

  /// Like resolve(), additionally reporting which surface matched.
  void *resolve(uint64_t GpuAddr, size_t AccessSize,
                const Surface **MatchedSurface) const;

  const Surface &surface(unsigned Index) const { return Surfaces[Index]; }
  unsigned surfaceCount() const { return Surfaces.size(); }

private:
  std::vector<Surface> Surfaces;
};

} // namespace svm
} // namespace concord

#endif // CONCORD_SVM_BINDINGTABLE_H
