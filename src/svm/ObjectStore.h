//===- ObjectStore.h - Multi-region SVM object store ------------*- C++ -*-===//
///
/// \file
/// The shared region's allocator, rebuilt as a multi-region object store.
///
/// One contiguous CPU/GPU virtual span (reserved by SharedRegion, so
/// svmConst() stays a single one-add constant and codegen/SvmLowering are
/// untouched) is carved into fixed-size power-of-two regions. Address to
/// region is a shift, so contains/extent/hazard queries stay O(ranges),
/// never O(regions x ranges). Each region has
///
///  * its own mutex — allocation scales with concurrent client sessions
///    instead of serializing on one global (or, worse, borrowed) lock;
///  * a binary buddy allocator (split on allocate, buddy-coalesce on
///    free) or, for frame rings, a bump pointer;
///  * a generation stamp: endSession()/resetFrameRing() reclaim every
///    allocation in the region in O(1) by bumping the generation — no
///    per-object free, no free-list walk — and allocationExtent() rejects
///    pointers whose block carries a stale generation;
///  * per-region RegionStats plus out-of-band block metadata, so interior
///    pointers resolve to their true allocation's extent (tightening the
///    footprint analysis' Bounded windows) instead of falling back to the
///    whole region.
///
/// Region classes: the default Heap (grown/shrunk region by region on
/// demand), per-session Session regions, per-frame FrameRing bump
/// regions, a Shadow class backing the scheduler's accumulate shadow
/// ranges, and LargeRun members of a contiguous multi-region span serving
/// allocations bigger than one region.
///
/// The design follows GPU-visible object-store allocators (Springer's
/// memory-efficient OOP-on-GPU work; pulse's objstore buddy) adapted to
/// Concord's single-span SVM of paper section 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_SVM_OBJECTSTORE_H
#define CONCORD_SVM_OBJECTSTORE_H

#include "svm/SharedRegion.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace concord {
namespace svm {

/// What a region is currently serving.
enum class RegionClass : uint8_t {
  Unassigned, ///< In the free pool, claimable by any class.
  Heap,       ///< Default malloc/free heap (buddy), grown on demand.
  Session,    ///< One client session's objects (buddy); O(1) reclaim.
  FrameRing,  ///< Per-frame bump ring; O(1) reset via generation bump.
  Shadow,     ///< Scheduler accumulate shadow ranges (buddy).
  LargeRun,   ///< Member of a contiguous multi-region large allocation.
};

const char *regionClassName(RegionClass Cls);

/// Snapshot of one region for stats reporting.
struct RegionInfo {
  uint32_t Index = 0;
  RegionClass Cls = RegionClass::Unassigned;
  uint32_t Generation = 0;
  uint64_t UsedBytes = 0;  ///< Block-granularity bytes taken from the region.
  uint64_t LiveAllocs = 0; ///< Live allocations (0 for pooled regions).
  RegionStats Stats;       ///< Cumulative across reclaims of this region.
};

/// Result classification for allocationExtent queries.
enum class ExtentResult {
  Exact,   ///< Pointer resolved to a live allocation (interior included).
  Stale,   ///< Block metadata found, but its generation predates a region
           ///< reset: the allocation was reclaimed in O(1). Rejected.
  Unknown, ///< No attributable block (freed, foreign, pooled region).
};

class ObjectStore {
public:
  static constexpr uint32_t InvalidRegion = 0xffffffffu;
  /// Smallest region (and the span alignment): region starts are always
  /// 64 KiB-aligned, which bounds the largest honourable alignment.
  static constexpr size_t MinRegionBytes = 64 << 10;
  static constexpr size_t MaxAlign = 64 << 10;
  /// Smallest buddy block.
  static constexpr size_t MinBlockBytes = 64;

  /// Region size for a requested span capacity: the smallest power of two
  /// >= MinRegionBytes giving at most ~64 regions.
  static size_t regionBytesFor(size_t CapacityBytes);
  /// Capacity rounded up to a whole number of regions.
  static size_t roundCapacity(size_t CapacityBytes);

  /// \p Base must point at \p CapacityBytes of memory aligned to 64 KiB,
  /// with CapacityBytes a multiple of regionBytesFor(CapacityBytes). The
  /// store does not own the span.
  ObjectStore(char *Base, size_t CapacityBytes);
  ~ObjectStore();

  ObjectStore(const ObjectStore &) = delete;
  ObjectStore &operator=(const ObjectStore &) = delete;

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  /// Allocates in (a region of) the given class, claiming fresh regions
  /// from the pool as the class fills up. Sizes above one region are
  /// served by a contiguous run of free regions (class LargeRun).
  /// Thread-safe; returns null on exhaustion. \p Align must be a power of
  /// two <= MaxAlign (values below 16 are rounded up to 16).
  void *allocate(size_t Size, size_t Align = 16,
                 RegionClass Cls = RegionClass::Heap);

  /// Allocates inside one specific Session or FrameRing region (sessions
  /// are bounded by their region by design — null when it is full).
  void *allocateInRegion(uint32_t Region, size_t Size, size_t Align = 16);

  /// Frees a pointer from any region/class. Freeing a pointer that is not
  /// a live allocation start (double free, stale generation, interior)
  /// is counted in badFrees() and otherwise ignored.
  void deallocate(void *Ptr);

  /// Resolves \p Ptr (which must lie inside the span) to its allocation:
  /// Exact fills \p Out with [Ptr, allocation end) even for interior
  /// pointers; Stale means the block's generation predates a region
  /// reset; Unknown means no block metadata covers the pointer.
  ExtentResult allocationExtent(const void *Ptr, MemRange *Out) const;

  //===--------------------------------------------------------------------===//
  // Sessions and frame rings
  //===--------------------------------------------------------------------===//

  /// Claims a region for a client session (buddy allocator). Returns
  /// InvalidRegion when the pool is empty.
  uint32_t createSession();

  /// Ends a session: every allocation in the region is reclaimed in O(1)
  /// by bumping the region generation and reinitializing the buddy free
  /// lists (O(log region-size) levels, no per-object work). The region
  /// returns to the pool; stale pointers into it are rejected by
  /// allocationExtent.
  void endSession(uint32_t Region);

  /// Claims a region as a per-frame bump ring. Returns InvalidRegion when
  /// the pool is empty.
  uint32_t createFrameRing();

  /// Frees the frame's allocations in O(1): generation bump + bump-offset
  /// rewind. The region stays claimed for the next frame.
  void resetFrameRing(uint32_t Region);

  /// Returns a frame ring to the pool (O(1), generation-bumped).
  void releaseFrameRing(uint32_t Region);

  //===--------------------------------------------------------------------===//
  // Geometry and stats
  //===--------------------------------------------------------------------===//

  uint32_t regionOf(const void *Ptr) const {
    return uint32_t((reinterpret_cast<uint64_t>(Ptr) - BaseAddr) >>
                    RegionShift);
  }
  size_t regionBytes() const { return size_t(1) << RegionShift; }
  uint32_t regionCount() const { return uint32_t(Regions.size()); }
  size_t capacity() const { return Capacity; }

  /// Current generation of a region.
  uint32_t generationOf(uint32_t Region) const;

  /// O(1) reclamations performed (endSession + resetFrameRing +
  /// releaseFrameRing).
  uint64_t o1Resets() const { return O1Resets.load(); }
  /// Rejected deallocate() calls (double frees, stale/interior pointers).
  uint64_t badFrees() const { return BadFrees.load(); }

  /// Aggregate allocator statistics across all regions (PeakBytes is the
  /// true global high-water mark, not a sum of per-region peaks).
  RegionStats aggregateStats() const;

  /// Per-region snapshots, pooled regions included.
  std::vector<RegionInfo> regionInfos() const;

  /// Free bytes: pooled regions plus per-region buddy/bump slack.
  size_t freeBytes() const;
  /// Free buddy blocks across claimed regions plus pooled regions
  /// (fragmentation indicator).
  size_t freeBlockCount() const;
  /// 1 - largest-free-chunk / total-free-bytes in [0, 1]; 0 when the
  /// store is empty or a maximal contiguous chunk holds all free bytes.
  double fragmentation() const;

private:
  struct Region;

  Region &regionAt(uint32_t Idx) { return *Regions[Idx]; }
  const Region &regionAt(uint32_t Idx) const { return *Regions[Idx]; }

  unsigned orderFor(size_t Bytes) const;
  /// Buddy allocation inside a locked region; null offset sentinel is
  /// ~0ull. Caller updates store-level stats.
  uint64_t buddyAlloc(Region &R, size_t Size, size_t Align, size_t *BlockOut);
  void buddyInit(Region &R);
  /// Erases Live entries overlapping [Lo, Hi) — only stale-generation
  /// entries can overlap a block the allocator just handed out, so this
  /// is the lazy purge behind O(1) resets (amortized O(1) per insert).
  void purgeStaleOverlaps(Region &R, uint64_t Lo, uint64_t Hi);
  /// Claims the lowest-index pooled region for \p Cls. Returns
  /// InvalidRegion when the pool is empty. Caller must not hold locks.
  uint32_t claimRegion(RegionClass Cls, bool Bump);
  /// Generation-bump reclaim of a claimed region; returns it to the pool
  /// unless \p KeepClaimed. Counts an O(1) reset when \p CountReset.
  void resetRegionLocked(Region &R, uint32_t Idx, bool KeepClaimed,
                         bool CountReset);
  void *largeAllocate(size_t Size);
  void largeFree(uint32_t HeadIdx);
  void maybeReclaimEmpty(uint32_t Idx);
  void noteAllocated(Region &R, uint64_t Bytes);
  void noteFreed(Region &R, uint64_t Bytes);

  char *Base = nullptr;
  uint64_t BaseAddr = 0;
  size_t Capacity = 0;
  unsigned RegionShift = 0;
  unsigned MaxOrder = 0; ///< Buddy order of a whole region.

  std::vector<std::unique_ptr<Region>> Regions;

  /// Guards the free pool, the per-class region lists, and class
  /// transitions (which also hold the region mutex; lock order is always
  /// PoolMutex before a region mutex, and never two region mutexes at
  /// once).
  mutable std::mutex PoolMutex;
  std::set<uint32_t> FreePool; ///< Ordered for contiguous-run scans.
  std::vector<uint32_t> HeapRegions;
  std::vector<uint32_t> ShadowRegions;

  // Store-level counters so aggregate stats never walk all regions under
  // every region lock.
  std::atomic<uint64_t> CurrentBytes{0};
  std::atomic<uint64_t> PeakBytes{0};
  std::atomic<uint64_t> NumAllocs{0};
  std::atomic<uint64_t> NumFrees{0};
  std::atomic<uint64_t> FailedAllocs{0};
  std::atomic<uint64_t> O1Resets{0};
  std::atomic<uint64_t> BadFrees{0};
};

} // namespace svm
} // namespace concord

#endif // CONCORD_SVM_OBJECTSTORE_H
