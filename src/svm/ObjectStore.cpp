//===- ObjectStore.cpp - Multi-region SVM object store --------------------===//

#include "svm/ObjectStore.h"

#include <algorithm>
#include <cassert>

using namespace concord;
using namespace concord::svm;

static uint64_t alignUp64(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

const char *concord::svm::regionClassName(RegionClass Cls) {
  switch (Cls) {
  case RegionClass::Unassigned:
    return "free";
  case RegionClass::Heap:
    return "heap";
  case RegionClass::Session:
    return "session";
  case RegionClass::FrameRing:
    return "frame-ring";
  case RegionClass::Shadow:
    return "shadow";
  case RegionClass::LargeRun:
    return "large-run";
  }
  return "?";
}

/// One fixed-size region. All fields are guarded by M; class transitions
/// (claim/release) additionally hold the store's PoolMutex.
struct ObjectStore::Region {
  mutable std::mutex M;
  RegionClass Cls = RegionClass::Unassigned;
  bool Bump = false; ///< FrameRing bump mode (no buddy lists).
  uint32_t Generation = 0;
  uint32_t RunHead = InvalidRegion; ///< LargeRun: index of the run head.
  uint32_t RunLen = 0;              ///< On the run head only.
  uint64_t BumpOff = 0;
  uint64_t UsedBytes = 0;
  uint64_t LiveAllocs = 0;
  RegionStats Stats; ///< Cumulative across reclaims.

  /// Buddy free lists: FreeByOrder[o] holds region-relative offsets of
  /// free blocks of size MinBlockBytes << o.
  std::vector<std::set<uint64_t>> FreeByOrder;

  /// Out-of-band block metadata: block offset -> payload end + the
  /// generation the block was allocated under. Entries from before a
  /// generation bump stay behind (that is what makes resets O(1)) and are
  /// rejected on lookup / purged lazily when a new block overlaps them.
  struct Block {
    uint64_t End = 0;
    uint32_t Gen = 0;
    uint8_t Order = 0;
  };
  std::map<uint64_t, Block> Live;
};

size_t ObjectStore::regionBytesFor(size_t CapacityBytes) {
  size_t RB = MinRegionBytes;
  while (RB * 64 < CapacityBytes)
    RB <<= 1;
  return RB;
}

size_t ObjectStore::roundCapacity(size_t CapacityBytes) {
  size_t RB = regionBytesFor(CapacityBytes);
  return size_t(alignUp64(CapacityBytes ? CapacityBytes : RB, RB));
}

ObjectStore::ObjectStore(char *SpanBase, size_t CapacityBytes)
    : Base(SpanBase), BaseAddr(reinterpret_cast<uint64_t>(SpanBase)),
      Capacity(CapacityBytes) {
  size_t RB = regionBytesFor(CapacityBytes);
  assert(CapacityBytes % RB == 0 && "capacity must be whole regions");
  assert(BaseAddr % MaxAlign == 0 && "span must be 64 KiB-aligned");
  RegionShift = 0;
  while ((size_t(1) << RegionShift) < RB)
    ++RegionShift;
  unsigned MinBlockShift = 0;
  while ((size_t(1) << MinBlockShift) < MinBlockBytes)
    ++MinBlockShift;
  MaxOrder = RegionShift - MinBlockShift;

  size_t Count = CapacityBytes / RB;
  Regions.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    Regions.push_back(std::make_unique<Region>());
    FreePool.insert(uint32_t(I));
  }
}

ObjectStore::~ObjectStore() = default;

unsigned ObjectStore::orderFor(size_t Bytes) const {
  unsigned O = 0;
  size_t S = MinBlockBytes;
  while (S < Bytes) {
    S <<= 1;
    ++O;
  }
  return O;
}

void ObjectStore::noteAllocated(Region &R, uint64_t Bytes) {
  R.Stats.BytesAllocated += Bytes;
  if (R.Stats.BytesAllocated > R.Stats.PeakBytes)
    R.Stats.PeakBytes = R.Stats.BytesAllocated;
  ++R.Stats.NumAllocs;
  ++R.LiveAllocs;
  uint64_t Cur = CurrentBytes.fetch_add(Bytes) + Bytes;
  uint64_t Prev = PeakBytes.load();
  while (Cur > Prev && !PeakBytes.compare_exchange_weak(Prev, Cur)) {
  }
  ++NumAllocs;
}

void ObjectStore::noteFreed(Region &R, uint64_t Bytes) {
  assert(R.Stats.BytesAllocated >= Bytes && "allocator accounting broke");
  R.Stats.BytesAllocated -= Bytes;
  ++R.Stats.NumFrees;
  assert(R.LiveAllocs > 0);
  --R.LiveAllocs;
  CurrentBytes.fetch_sub(Bytes);
  ++NumFrees;
}

void ObjectStore::buddyInit(Region &R) {
  R.FreeByOrder.assign(MaxOrder + 1, {});
  R.FreeByOrder[MaxOrder].insert(0);
  R.BumpOff = 0;
  R.UsedBytes = 0;
}

void ObjectStore::purgeStaleOverlaps(Region &R, uint64_t Lo, uint64_t Hi) {
  auto It = R.Live.lower_bound(Lo);
  if (It != R.Live.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second.End > Lo) {
      assert(Prev->second.Gen != R.Generation &&
             "live current-generation block overlaps a free block");
      R.Live.erase(Prev);
    }
  }
  while (It != R.Live.end() && It->first < Hi) {
    assert(It->second.Gen != R.Generation &&
           "live current-generation block overlaps a free block");
    It = R.Live.erase(It);
  }
}

uint64_t ObjectStore::buddyAlloc(Region &R, size_t Size, size_t Align,
                                 size_t *BlockOut) {
  size_t Needed = std::max(std::max(Size, Align), MinBlockBytes);
  unsigned Order = orderFor(Needed);
  if (Order > MaxOrder)
    return ~0ull;
  unsigned From = Order;
  while (From <= MaxOrder && R.FreeByOrder[From].empty())
    ++From;
  if (From > MaxOrder)
    return ~0ull;
  uint64_t Off = *R.FreeByOrder[From].begin();
  R.FreeByOrder[From].erase(R.FreeByOrder[From].begin());
  // Split down, keeping the low half at each level.
  for (unsigned O = From; O > Order; --O) {
    size_t Half = MinBlockBytes << (O - 1);
    R.FreeByOrder[O - 1].insert(Off + Half);
  }
  size_t BlockBytes = MinBlockBytes << Order;
  *BlockOut = BlockBytes;
  purgeStaleOverlaps(R, Off, Off + BlockBytes);
  R.Live.emplace(Off,
                 Region::Block{Off + Size, R.Generation, uint8_t(Order)});
  R.UsedBytes += BlockBytes;
  return Off;
}

uint32_t ObjectStore::claimRegion(RegionClass Cls, bool Bump) {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  if (FreePool.empty())
    return InvalidRegion;
  uint32_t Idx = *FreePool.begin();
  FreePool.erase(FreePool.begin());
  Region &R = regionAt(Idx);
  {
    std::lock_guard<std::mutex> Lock(R.M);
    R.Cls = Cls;
    R.Bump = Bump;
    R.RunHead = InvalidRegion;
    R.RunLen = 0;
    if (Bump) {
      R.BumpOff = 0;
      R.UsedBytes = 0;
    } else {
      buddyInit(R);
    }
  }
  if (Cls == RegionClass::Heap)
    HeapRegions.push_back(Idx);
  else if (Cls == RegionClass::Shadow)
    ShadowRegions.push_back(Idx);
  return Idx;
}

void ObjectStore::resetRegionLocked(Region &R, uint32_t Idx, bool KeepClaimed,
                                    bool CountReset) {
  // The whole generation's allocations are reclaimed at once: one
  // subtraction, one generation bump, O(log region-size) free-list
  // levels. No per-object walk — the Live map stays behind and its stale
  // entries are rejected by generation (and purged lazily on overlap).
  CurrentBytes.fetch_sub(R.Stats.BytesAllocated);
  NumFrees.fetch_add(R.LiveAllocs);
  R.Stats.NumFrees += R.LiveAllocs;
  R.Stats.BytesAllocated = 0;
  R.LiveAllocs = 0;
  R.UsedBytes = 0;
  R.BumpOff = 0;
  ++R.Generation;
  if (CountReset)
    ++O1Resets;
  if (KeepClaimed) {
    if (!R.Bump)
      buddyInit(R);
  } else {
    R.Cls = RegionClass::Unassigned;
    R.Bump = false;
    R.RunHead = InvalidRegion;
    R.RunLen = 0;
    FreePool.insert(Idx);
  }
}

void *ObjectStore::allocate(size_t Size, size_t Align, RegionClass Cls) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  assert((Cls == RegionClass::Heap || Cls == RegionClass::Shadow) &&
         "allocate() serves Heap/Shadow; use allocateInRegion for sessions");
  if (Align < 16)
    Align = 16;
  if (Size == 0)
    Size = 1;
  if (Align > MaxAlign) {
    ++FailedAllocs;
    return nullptr;
  }
  if (std::max(Size, Align) > regionBytes())
    return largeAllocate(Size);

  for (;;) {
    std::vector<uint32_t> Candidates;
    {
      std::lock_guard<std::mutex> Pool(PoolMutex);
      Candidates =
          Cls == RegionClass::Heap ? HeapRegions : ShadowRegions;
    }
    for (uint32_t Idx : Candidates) {
      Region &R = regionAt(Idx);
      std::lock_guard<std::mutex> Lock(R.M);
      if (R.Cls != Cls || R.Bump)
        continue; // Reclaimed or repurposed since the snapshot.
      size_t BlockBytes = 0;
      uint64_t Off = buddyAlloc(R, Size, Align, &BlockBytes);
      if (Off == ~0ull)
        continue;
      noteAllocated(R, BlockBytes);
      return Base + (uint64_t(Idx) << RegionShift) + Off;
    }
    if (claimRegion(Cls, /*Bump=*/false) == InvalidRegion) {
      ++FailedAllocs;
      return nullptr;
    }
    // Retry with the freshly claimed region in the class list. The loop
    // terminates: each iteration either allocates or consumes a pooled
    // region, and the pool is finite.
  }
}

void *ObjectStore::allocateInRegion(uint32_t Idx, size_t Size, size_t Align) {
  assert(Idx < Regions.size());
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  if (Align < 16)
    Align = 16;
  if (Size == 0)
    Size = 1;
  Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  if (Align > MaxAlign ||
      (R.Cls != RegionClass::Session && R.Cls != RegionClass::FrameRing)) {
    ++FailedAllocs;
    return nullptr;
  }
  if (R.Bump) {
    uint64_t Off = alignUp64(R.BumpOff, Align);
    if (Off + Size > regionBytes()) {
      ++R.Stats.FailedAllocs;
      ++FailedAllocs;
      return nullptr;
    }
    purgeStaleOverlaps(R, Off, Off + Size);
    R.Live.emplace(Off, Region::Block{Off + Size, R.Generation, 0});
    R.BumpOff = Off + Size;
    R.UsedBytes = R.BumpOff;
    noteAllocated(R, Size);
    return Base + (uint64_t(Idx) << RegionShift) + Off;
  }
  size_t BlockBytes = 0;
  uint64_t Off = buddyAlloc(R, Size, Align, &BlockBytes);
  if (Off == ~0ull) {
    ++R.Stats.FailedAllocs;
    ++FailedAllocs;
    return nullptr;
  }
  noteAllocated(R, BlockBytes);
  return Base + (uint64_t(Idx) << RegionShift) + Off;
}

void *ObjectStore::largeAllocate(size_t Size) {
  size_t RB = regionBytes();
  uint32_t Want = uint32_t((Size + RB - 1) / RB);
  uint32_t Head = InvalidRegion;
  {
    std::lock_guard<std::mutex> Pool(PoolMutex);
    // Scan the ordered pool for a contiguous run of Want regions.
    uint32_t RunStart = InvalidRegion, RunLen = 0, Prev = InvalidRegion;
    for (uint32_t Idx : FreePool) {
      if (RunLen != 0 && Idx == Prev + 1) {
        ++RunLen;
      } else {
        RunStart = Idx;
        RunLen = 1;
      }
      Prev = Idx;
      if (RunLen == Want) {
        Head = RunStart;
        break;
      }
    }
    if (Head == InvalidRegion) {
      ++FailedAllocs;
      return nullptr;
    }
    for (uint32_t I = Head; I < Head + Want; ++I)
      FreePool.erase(I);
    for (uint32_t I = Head; I < Head + Want; ++I) {
      Region &R = regionAt(I);
      std::lock_guard<std::mutex> Lock(R.M);
      R.Cls = RegionClass::LargeRun;
      R.Bump = false;
      R.RunHead = Head;
      R.RunLen = I == Head ? Want : 0;
      if (I == Head) {
        purgeStaleOverlaps(R, 0, regionBytes());
        R.Live.emplace(0, Region::Block{Size, R.Generation, 0});
        R.UsedBytes = RB;
        noteAllocated(R, uint64_t(Want) * RB);
      } else {
        R.UsedBytes = RB;
      }
    }
  }
  return Base + (uint64_t(Head) << RegionShift);
}

void ObjectStore::largeFree(uint32_t HeadIdx) {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  uint32_t Len = 0;
  {
    Region &R = regionAt(HeadIdx);
    std::lock_guard<std::mutex> Lock(R.M);
    if (R.Cls != RegionClass::LargeRun || R.RunHead != HeadIdx ||
        R.RunLen == 0) {
      ++BadFrees;
      return;
    }
    auto It = R.Live.find(0);
    if (It == R.Live.end() || It->second.Gen != R.Generation) {
      ++BadFrees;
      return;
    }
    Len = R.RunLen;
    R.Live.erase(It);
    noteFreed(R, uint64_t(Len) * regionBytes());
    ++R.Generation;
    R.Cls = RegionClass::Unassigned;
    R.RunHead = InvalidRegion;
    R.RunLen = 0;
    R.UsedBytes = 0;
  }
  for (uint32_t I = HeadIdx + 1; I < HeadIdx + Len; ++I) {
    Region &R = regionAt(I);
    std::lock_guard<std::mutex> Lock(R.M);
    ++R.Generation;
    R.Cls = RegionClass::Unassigned;
    R.RunHead = InvalidRegion;
    R.UsedBytes = 0;
  }
  for (uint32_t I = HeadIdx; I < HeadIdx + Len; ++I)
    FreePool.insert(I);
}

void ObjectStore::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  uint32_t Idx = regionOf(Ptr);
  assert(Idx < Regions.size() && "freeing a pointer outside the store");
  Region &R = regionAt(Idx);
  uint64_t Off =
      reinterpret_cast<uint64_t>(Ptr) - BaseAddr - (uint64_t(Idx) << RegionShift);
  bool Reclaimable = false;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    if (R.Cls == RegionClass::LargeRun) {
      if (R.RunHead != Idx || Off != 0) {
        ++BadFrees;
        return;
      }
      // Fall through to largeFree outside this region lock (it re-locks
      // under PoolMutex; never two region locks at once).
    } else {
      auto It = R.Live.find(Off);
      if (It == R.Live.end() || It->second.Gen != R.Generation) {
        // Double free, stale-generation pointer, or interior pointer.
        ++BadFrees;
        return;
      }
      if (R.Bump) {
        // Ring space is reclaimed by resetFrameRing, not piecewise; only
        // the accounting and metadata retire here.
        noteFreed(R, It->second.End - Off);
        R.Live.erase(It);
      } else {
        unsigned Order = It->second.Order;
        size_t BlockBytes = MinBlockBytes << Order;
        R.Live.erase(It);
        // Coalesce with the buddy at each level.
        uint64_t Cur = Off;
        unsigned O = Order;
        while (O < MaxOrder) {
          uint64_t Buddy = Cur ^ (uint64_t(MinBlockBytes) << O);
          if (R.FreeByOrder[O].erase(Buddy) == 0)
            break;
          Cur = std::min(Cur, Buddy);
          ++O;
        }
        R.FreeByOrder[O].insert(Cur);
        R.UsedBytes -= BlockBytes;
        noteFreed(R, BlockBytes);
      }
      Reclaimable = (R.Cls == RegionClass::Heap ||
                     R.Cls == RegionClass::Shadow) &&
                    R.LiveAllocs == 0;
    }
    if (R.Cls == RegionClass::LargeRun)
      ; // handled below
    else if (!Reclaimable)
      return;
  }
  if (Reclaimable) {
    maybeReclaimEmpty(Idx);
    return;
  }
  largeFree(Idx);
}

void ObjectStore::maybeReclaimEmpty(uint32_t Idx) {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  if ((R.Cls != RegionClass::Heap && R.Cls != RegionClass::Shadow) ||
      R.LiveAllocs != 0)
    return; // Raced with a fresh allocation; keep it claimed.
  std::vector<uint32_t> &List =
      R.Cls == RegionClass::Heap ? HeapRegions : ShadowRegions;
  List.erase(std::remove(List.begin(), List.end(), Idx), List.end());
  resetRegionLocked(R, Idx, /*KeepClaimed=*/false, /*CountReset=*/false);
}

ExtentResult ObjectStore::allocationExtent(const void *Ptr,
                                           MemRange *Out) const {
  uint64_t P = reinterpret_cast<uint64_t>(Ptr);
  uint32_t Idx = regionOf(Ptr);
  if (Idx >= Regions.size())
    return ExtentResult::Unknown;
  uint32_t Head = Idx;
  {
    const Region &R = regionAt(Idx);
    std::lock_guard<std::mutex> Lock(R.M);
    if (R.Cls != RegionClass::LargeRun) {
      uint64_t RegionStart = BaseAddr + (uint64_t(Idx) << RegionShift);
      uint64_t Off = P - RegionStart;
      auto It = R.Live.upper_bound(Off);
      if (It == R.Live.begin())
        return ExtentResult::Unknown;
      --It;
      if (Off >= It->second.End)
        return ExtentResult::Unknown;
      if (It->second.Gen != R.Generation)
        return ExtentResult::Stale;
      *Out = {P, RegionStart + It->second.End};
      return ExtentResult::Exact;
    }
    Head = R.RunHead;
    if (Head == InvalidRegion || Head >= Regions.size())
      return ExtentResult::Unknown;
  }
  // Large run: the head region's metadata describes the whole span. The
  // member lock is released first — never two region locks at once.
  const Region &H = regionAt(Head);
  std::lock_guard<std::mutex> Lock(H.M);
  if (H.Cls != RegionClass::LargeRun || H.RunHead != Head)
    return ExtentResult::Unknown;
  auto It = H.Live.find(0);
  if (It == H.Live.end())
    return ExtentResult::Unknown;
  if (It->second.Gen != H.Generation)
    return ExtentResult::Stale;
  uint64_t HeadStart = BaseAddr + (uint64_t(Head) << RegionShift);
  if (P < HeadStart || P >= HeadStart + It->second.End)
    return ExtentResult::Unknown; // Past the payload, inside the run tail.
  *Out = {P, HeadStart + It->second.End};
  return ExtentResult::Exact;
}

uint32_t ObjectStore::createSession() {
  return claimRegion(RegionClass::Session, /*Bump=*/false);
}

void ObjectStore::endSession(uint32_t Idx) {
  assert(Idx < Regions.size());
  std::lock_guard<std::mutex> Pool(PoolMutex);
  Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Cls != RegionClass::Session) {
    ++BadFrees;
    return;
  }
  resetRegionLocked(R, Idx, /*KeepClaimed=*/false, /*CountReset=*/true);
}

uint32_t ObjectStore::createFrameRing() {
  return claimRegion(RegionClass::FrameRing, /*Bump=*/true);
}

void ObjectStore::resetFrameRing(uint32_t Idx) {
  assert(Idx < Regions.size());
  Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Cls != RegionClass::FrameRing) {
    ++BadFrees;
    return;
  }
  resetRegionLocked(R, Idx, /*KeepClaimed=*/true, /*CountReset=*/true);
}

void ObjectStore::releaseFrameRing(uint32_t Idx) {
  assert(Idx < Regions.size());
  std::lock_guard<std::mutex> Pool(PoolMutex);
  Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Cls != RegionClass::FrameRing) {
    ++BadFrees;
    return;
  }
  resetRegionLocked(R, Idx, /*KeepClaimed=*/false, /*CountReset=*/true);
}

uint32_t ObjectStore::generationOf(uint32_t Idx) const {
  assert(Idx < Regions.size());
  const Region &R = regionAt(Idx);
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Generation;
}

RegionStats ObjectStore::aggregateStats() const {
  RegionStats S;
  S.BytesAllocated = CurrentBytes.load();
  S.PeakBytes = PeakBytes.load();
  S.NumAllocs = NumAllocs.load();
  S.NumFrees = NumFrees.load();
  S.FailedAllocs = FailedAllocs.load();
  return S;
}

std::vector<RegionInfo> ObjectStore::regionInfos() const {
  std::vector<RegionInfo> Out;
  Out.reserve(Regions.size());
  for (uint32_t I = 0; I < Regions.size(); ++I) {
    const Region &R = regionAt(I);
    std::lock_guard<std::mutex> Lock(R.M);
    RegionInfo Info;
    Info.Index = I;
    Info.Cls = R.Cls;
    Info.Generation = R.Generation;
    Info.UsedBytes = R.UsedBytes;
    Info.LiveAllocs = R.LiveAllocs;
    Info.Stats = R.Stats;
    Out.push_back(Info);
  }
  return Out;
}

size_t ObjectStore::freeBytes() const {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  size_t RB = regionBytes();
  size_t Total = FreePool.size() * RB;
  for (uint32_t I = 0; I < Regions.size(); ++I) {
    const Region &R = regionAt(I);
    std::lock_guard<std::mutex> Lock(R.M);
    switch (R.Cls) {
    case RegionClass::Heap:
    case RegionClass::Session:
    case RegionClass::Shadow:
      Total += RB - R.UsedBytes;
      break;
    case RegionClass::FrameRing:
      Total += RB - R.BumpOff;
      break;
    default:
      break;
    }
  }
  return Total;
}

size_t ObjectStore::freeBlockCount() const {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  size_t Count = FreePool.size();
  for (uint32_t I = 0; I < Regions.size(); ++I) {
    const Region &R = regionAt(I);
    std::lock_guard<std::mutex> Lock(R.M);
    for (const std::set<uint64_t> &FL : R.FreeByOrder)
      if (R.Cls == RegionClass::Heap || R.Cls == RegionClass::Session ||
          R.Cls == RegionClass::Shadow)
        Count += FL.size();
  }
  return Count;
}

double ObjectStore::fragmentation() const {
  std::lock_guard<std::mutex> Pool(PoolMutex);
  size_t RB = regionBytes();
  uint64_t TotalFree = uint64_t(FreePool.size()) * RB;
  // Largest contiguous chunk: the longest run of pooled regions, or the
  // biggest free buddy block / bump tail in a claimed region.
  uint64_t Largest = 0;
  {
    uint32_t RunLen = 0, Prev = InvalidRegion;
    for (uint32_t Idx : FreePool) {
      RunLen = (RunLen != 0 && Idx == Prev + 1) ? RunLen + 1 : 1;
      Prev = Idx;
      Largest = std::max(Largest, uint64_t(RunLen) * RB);
    }
  }
  for (uint32_t I = 0; I < Regions.size(); ++I) {
    const Region &R = regionAt(I);
    std::lock_guard<std::mutex> Lock(R.M);
    switch (R.Cls) {
    case RegionClass::Heap:
    case RegionClass::Session:
    case RegionClass::Shadow: {
      TotalFree += RB - R.UsedBytes;
      for (unsigned O = 0; O < R.FreeByOrder.size(); ++O)
        if (!R.FreeByOrder[O].empty())
          Largest = std::max(Largest, uint64_t(MinBlockBytes) << O);
      break;
    }
    case RegionClass::FrameRing:
      TotalFree += RB - R.BumpOff;
      Largest = std::max(Largest, uint64_t(RB - R.BumpOff));
      break;
    default:
      break;
    }
  }
  if (TotalFree == 0)
    return 0.0;
  return 1.0 - double(Largest) / double(TotalFree);
}
