//===- SharedRegion.h - Software shared virtual memory region -*- C++ -*-===//
///
/// \file
/// The heart of Concord's software SVM (paper section 3.1). A SharedRegion is
/// a single virtual memory range created at program startup that is shared
/// between the CPU and the (simulated) GPU. Any pointer the GPU dereferences
/// must point into this region; programs get that property by routing
/// malloc/free to the region's allocator.
///
/// Shared pointers are plain CPU virtual addresses. The GPU sees the same
/// physical bytes through a surface whose base is \c gpuBase(); translating a
/// CPU pointer for GPU use is a single add of the runtime constant
/// \c svmConst() = gpuBase - cpuBase, exactly the transformation the Concord
/// compiler emits (Figure 3 of the paper).
///
/// The region's allocator is the multi-region ObjectStore (ObjectStore.h):
/// one contiguous span — so svmConst() stays a single constant — carved into
/// fixed-size regions with per-region buddy allocators, locks, and
/// generation stamps. The pre-store single-arena first-fit allocator is kept
/// behind ArenaMode::Legacy (env CONCORD_SVM_LEGACY=1) as an escape hatch.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_SVM_SHAREDREGION_H
#define CONCORD_SVM_SHAREDREGION_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <utility>

namespace concord {
namespace svm {

class ObjectStore;

/// A half-open byte range [Begin, End) of CPU virtual addresses inside a
/// shared region. The scheduler's access sets are built from these; hazard
/// detection reduces to overlap queries between ranges.
struct MemRange {
  uint64_t Begin = 0;
  uint64_t End = 0; ///< One past the last byte; Begin == End is empty.

  bool empty() const { return Begin >= End; }
  uint64_t size() const { return empty() ? 0 : End - Begin; }

  bool overlaps(const MemRange &Other) const {
    return Begin < Other.End && Other.Begin < End && !empty() &&
           !Other.empty();
  }
  bool contains(const MemRange &Other) const {
    return Other.empty() || (Begin <= Other.Begin && Other.End <= End);
  }

  static MemRange ofBytes(const void *Ptr, size_t Bytes) {
    auto P = reinterpret_cast<uint64_t>(Ptr);
    return {P, P + Bytes};
  }
  template <typename T> static MemRange ofArray(const T *Ptr, size_t N) {
    return ofBytes(Ptr, N * sizeof(T));
  }
};

/// Allocation statistics for a shared region (or one region of the store).
struct RegionStats {
  uint64_t BytesAllocated = 0; ///< Currently live block-granularity bytes.
  uint64_t PeakBytes = 0;      ///< High-water mark of live bytes.
  uint64_t NumAllocs = 0;      ///< Total successful allocations.
  uint64_t NumFrees = 0;       ///< Total frees.
  uint64_t FailedAllocs = 0;   ///< Allocations that returned null.
};

/// Which allocator backs a SharedRegion.
enum class ArenaMode {
  Auto,   ///< ObjectStore unless env CONCORD_SVM_LEGACY=1.
  Legacy, ///< Pre-store single-arena first-fit free list.
  Store,  ///< Multi-region ObjectStore.
};

/// A pinned CPU/GPU-shared memory arena.
///
/// The arena is ordinary host memory (all physical memory is shared between
/// CPU and GPU on the modelled processor), so the CPU side manipulates
/// objects in it directly with native loads and stores. The simulated GPU
/// accesses it through a BindingTable surface.
///
/// All allocator entry points are thread-safe: the object store takes
/// per-region locks, the legacy arena its own mutex — callers no longer
/// serialize on any external (borrowed) lock.
class SharedRegion {
public:
  /// Default synthetic GPU virtual base for the region's backing surface.
  /// Deliberately different from the CPU base so that untranslated pointer
  /// bugs fault instead of silently working.
  static constexpr uint64_t DefaultGpuBase = 0x4000000000ull;

  explicit SharedRegion(size_t CapacityBytes,
                        uint64_t GpuBase = DefaultGpuBase,
                        ArenaMode Mode = ArenaMode::Auto);
  ~SharedRegion();

  SharedRegion(const SharedRegion &) = delete;
  SharedRegion &operator=(const SharedRegion &) = delete;

  /// Allocates \p Size bytes aligned to \p Align (power of two). Returns
  /// null when the region is exhausted. Thread-safe.
  void *allocate(size_t Size, size_t Align = 16);

  /// Allocates from the store's dedicated Shadow region class (the
  /// scheduler's accumulate shadow ranges), keeping shadow churn out of the
  /// default heap regions. Falls back to allocate() in legacy mode.
  void *allocateShadow(size_t Size, size_t Align = 16);

  /// Frees a pointer previously returned by allocate(). Null is ignored.
  /// Thread-safe.
  void deallocate(void *Ptr);

  /// Typed array allocation (uninitialized).
  template <typename T> T *allocArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Allocate and construct a single object in the region.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    void *Mem = allocate(sizeof(T), alignof(T));
    if (!Mem)
      return nullptr;
    return new (Mem) T(std::forward<ArgTs>(Args)...);
  }

  /// Destroy and free an object created with create().
  template <typename T> void destroy(T *Obj) {
    if (!Obj)
      return;
    Obj->~T();
    deallocate(Obj);
  }

  /// True if \p Ptr points into this region.
  bool contains(const void *Ptr) const {
    auto P = reinterpret_cast<uintptr_t>(Ptr);
    return P >= CpuBaseAddr && P < CpuBaseAddr + Capacity;
  }

  /// True if the whole byte range lies inside this region.
  bool containsRange(const MemRange &R) const {
    return R.empty() ||
           (R.Begin >= CpuBaseAddr && R.End <= CpuBaseAddr + Capacity);
  }

  /// The region's full extent as a MemRange (CPU addresses).
  MemRange range() const {
    return {CpuBaseAddr, CpuBaseAddr + Capacity};
  }

  /// The extent [Ptr, end-of-allocation) of the live allocation containing
  /// \p Ptr — interior pointers resolve to their true allocation, not the
  /// whole region. Used by the footprint analysis to bound a ⊤ access
  /// rooted at a known allocation instead of charging the whole region.
  ///
  /// Returns an empty range for stale pointers into a store region that was
  /// reclaimed in O(1) (generation bumped), and falls back to range() when
  /// no allocation can be attributed (freed block, foreign pointer).
  MemRange allocationExtent(const void *Ptr) const;

  /// The convex hull of every allocation sharing \p Seed's *requested
  /// size* — its size class, which the points-to analysis uses as the
  /// concrete stand-in for an allocation pool ("any node of class C").
  /// Seed must be the begin address of a live allocation made through this
  /// facade; anything else falls back to range() (sound: a pool summary
  /// may over- but never under-approximate). The hull is monotone — frees
  /// never shrink it — so a concretized pool range can only get looser,
  /// never miss a member that existed at analysis time.
  MemRange poolExtent(const void *Seed) const;

  /// CPU virtual address of the region base.
  uint64_t cpuBase() const { return CpuBaseAddr; }
  /// GPU virtual address of the backing surface base.
  uint64_t gpuBase() const { return GpuBaseAddr; }
  /// The runtime constant gpu_base - cpu_base added to translate a shared
  /// CPU pointer to its GPU representation (computed once, section 3.1).
  uint64_t svmConst() const { return GpuBaseAddr - CpuBaseAddr; }
  size_t capacity() const { return Capacity; }

  /// Translate a CPU virtual address into the GPU address space.
  uint64_t gpuFromCpu(uint64_t CpuAddr) const { return CpuAddr + svmConst(); }
  /// Translate a GPU virtual address back into the CPU address space.
  uint64_t cpuFromGpu(uint64_t GpuAddr) const { return GpuAddr - svmConst(); }

  /// Host pointer for a GPU virtual address, or null if out of bounds.
  void *hostFromGpu(uint64_t GpuAddr, size_t AccessSize) const;

  /// Pins the region for the duration of a GPU kernel launch. The region is
  /// modelled as always resident; pinning is tracked so the runtime can
  /// assert the consistency protocol (pin before launch, unpin after).
  /// The count is atomic: the scheduler launches kernels concurrently from
  /// several worker threads, all pinning the same region.
  void pin() { PinCount.fetch_add(1, std::memory_order_relaxed); }
  void unpin();
  bool isPinned() const {
    return PinCount.load(std::memory_order_relaxed) != 0;
  }

  /// Aggregate allocation statistics (snapshot; thread-safe).
  RegionStats stats() const;

  /// Number of free bytes currently available (counting headers as used).
  size_t freeBytes() const;

  /// Number of free blocks (fragmentation indicator): legacy free-list
  /// entries, or the store's pooled regions + free buddy blocks.
  size_t freeBlockCount() const;

  /// The backing object store, or null in legacy mode. Sessions, frame
  /// rings, and per-region stats are reached through this.
  ObjectStore *objectStore() { return Store.get(); }
  const ObjectStore *objectStore() const { return Store.get(); }
  bool usesObjectStore() const { return Store != nullptr; }

private:
  struct AllocHeader {
    uint64_t BlockOff;  ///< Offset of the underlying block in the arena.
    uint64_t BlockSize; ///< Total size of the underlying block.
    uint64_t Magic;     ///< Guard value to catch stray frees.
  };
  static constexpr uint64_t HeaderMagic = 0xC0C07D5A11C0FFEEull;

  char *Arena = nullptr;
  size_t Capacity = 0;
  uint64_t CpuBaseAddr = 0;
  uint64_t GpuBaseAddr = 0;
  std::atomic<unsigned> PinCount{0};

  /// Multi-region allocator; null in legacy mode.
  std::unique_ptr<ObjectStore> Store;

  // Legacy-arena state, all guarded by LegacyMutex.
  mutable std::mutex LegacyMutex;
  RegionStats Stats;
  /// Free blocks keyed by arena offset -> block size. Adjacent blocks are
  /// coalesced on free.
  std::map<uint64_t, uint64_t> FreeBlocks;
  /// Live payload extents keyed by payload offset -> payload end offset so
  /// interior pointers resolve to their allocation (not the whole region).
  std::map<uint64_t, uint64_t> LiveBlocks;

  // Pool (size-class) bookkeeping for poolExtent, mode-independent and
  // guarded by PoolMutex. PoolSizes maps each live allocation's begin
  // address to its *requested* size (the size class key — the allocators
  // pad block sizes, so the header cannot recover it); PoolHulls grows
  // monotonically per size class and is never shrunk by frees.
  mutable std::mutex PoolMutex;
  std::map<uint64_t, size_t> PoolSizes;
  std::map<size_t, MemRange> PoolHulls;
  void recordPoolAlloc(void *Ptr, size_t Size);
};

/// Installs \p Region as the process-wide default used by svmMalloc/svmFree
/// (the redirected malloc/free of section 3.1). Returns the previous one.
SharedRegion *setDefaultRegion(SharedRegion *Region);

/// The current default region, or null if none installed.
SharedRegion *defaultRegion();

/// Redirected malloc: allocates from the default shared region.
void *svmMalloc(size_t Size);

/// Redirected free.
void svmFree(void *Ptr);

/// RAII helper installing a region as the default for a scope.
class DefaultRegionScope {
public:
  explicit DefaultRegionScope(SharedRegion &Region)
      : Previous(setDefaultRegion(&Region)) {}
  ~DefaultRegionScope() { setDefaultRegion(Previous); }

private:
  SharedRegion *Previous;
};

} // namespace svm
} // namespace concord

#endif // CONCORD_SVM_SHAREDREGION_H
