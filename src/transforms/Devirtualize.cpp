//===- Devirtualize.cpp - Lower virtual calls to inline test sequences ----===//
//
// Current integrated GPUs cannot do indirect calls, so Concord lowers every
// virtual call into an inline sequence of tests of the loaded vtable entry
// against the possible target function symbols, derived from class
// hierarchy analysis (paper section 3.2).
//
//===----------------------------------------------------------------------===//

#include "analysis/ClassHierarchy.h"
#include "transforms/Passes.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

/// Lowers the VCall at (BB, Idx). Returns the number of candidate targets.
static unsigned lowerVCall(Module &M, Function &F, BasicBlock *BB,
                           size_t Idx, const analysis::ClassHierarchy &CHA) {
  Instruction *VC = BB->instr(Idx);
  std::vector<Function *> Targets =
      CHA.possibleTargets(VC->vcallClass(), VC->vcallGroup(), VC->vcallSlot());
  assert(!Targets.empty() && "virtual call with no possible target");
  TypeContext &T = M.types();

  std::vector<Value *> CallArgs(VC->operands());

  // Single possible target: true devirtualization, no vptr test needed.
  if (Targets.size() == 1) {
    auto Direct = std::make_unique<Instruction>(Opcode::Call, VC->type());
    for (Value *Op : CallArgs)
      Direct->addOperand(Op);
    Direct->setCallee(Targets.front());
    Instruction *D = BB->insertAt(Idx, std::move(Direct));
    F.replaceAllUsesWith(VC, D);
    BB->erase(Idx + 1);
    return 1;
  }

  // Split the block after the vcall.
  BasicBlock *Cont = F.createBlockAfter(BB, BB->name() + ".vc.cont");
  while (BB->size() > Idx + 1)
    Cont->append(BB->take(Idx + 1));
  for (BasicBlock *S : Cont->successors())
    for (Instruction *Phi : S->phis())
      for (unsigned K = 0; K < Phi->numBlocks(); ++K)
        if (Phi->incomingBlock(K) == BB)
          Phi->setBlock(K, Cont);

  // Load the function symbol from the object's vtable:
  //   vptr  = load (u64*)obj          ; vtable CPU address
  //   entry = load vptr[slot]         ; function symbol value
  Value *Obj = CallArgs[0];
  auto MakeIn = [&](BasicBlock *Where, std::unique_ptr<Instruction> I) {
    return Where->append(std::move(I));
  };
  // Detach the vcall but keep it alive: its type/slot are still read below
  // and its uses are rewired to the result phi at the end.
  std::unique_ptr<Instruction> VCOwned = BB->take(Idx);

  auto VptrAddr = std::make_unique<Instruction>(
      Opcode::FieldAddr, T.pointerTo(T.uint64Ty()));
  VptrAddr->addOperand(Obj);
  VptrAddr->setAttr(0);
  Instruction *VptrAddrI = MakeIn(BB, std::move(VptrAddr));

  auto VptrLoad = std::make_unique<Instruction>(Opcode::Load, T.uint64Ty());
  VptrLoad->addOperand(VptrAddrI);
  Instruction *Vptr = MakeIn(BB, std::move(VptrLoad));

  auto VtPtr = std::make_unique<Instruction>(Opcode::Cast,
                                             T.pointerTo(T.uint64Ty()));
  VtPtr->addOperand(Vptr);
  VtPtr->setAttr(uint64_t(CastKind::IntToPtr));
  Instruction *VtPtrI = MakeIn(BB, std::move(VtPtr));

  auto EntryAddr = std::make_unique<Instruction>(Opcode::IndexAddr,
                                                 T.pointerTo(T.uint64Ty()));
  EntryAddr->addOperand(VtPtrI);
  EntryAddr->addOperand(M.constInt(T.int64Ty(), VC->vcallSlot()));
  Instruction *EntryAddrI = MakeIn(BB, std::move(EntryAddr));

  auto EntryLoad = std::make_unique<Instruction>(Opcode::Load, T.uint64Ty());
  EntryLoad->addOperand(EntryAddrI);
  Instruction *FnSym = MakeIn(BB, std::move(EntryLoad));

  // Build the compare chain.
  std::vector<std::pair<Value *, BasicBlock *>> Results;
  BasicBlock *TestBB = BB;
  for (size_t K = 0; K < Targets.size(); ++K) {
    Function *Target = Targets[K];
    BasicBlock *CallBB =
        F.createBlockAfter(TestBB, BB->name() + ".vc.call" +
                                       std::to_string(K));
    auto DirectCall = std::make_unique<Instruction>(Opcode::Call, VC->type());
    for (Value *Op : CallArgs)
      DirectCall->addOperand(Op);
    DirectCall->setCallee(Target);
    Instruction *CallI = MakeIn(CallBB, std::move(DirectCall));
    auto BrCont = std::make_unique<Instruction>(Opcode::Br, T.voidTy());
    BrCont->addBlock(Cont);
    MakeIn(CallBB, std::move(BrCont));
    Results.push_back({CallI, CallBB});

    bool Last = K + 1 == Targets.size();
    if (Last) {
      // Last candidate: branch unconditionally (CHA is exhaustive) but keep
      // a trap block for safety against corrupted vtables.
      BasicBlock *TrapBB =
          F.createBlockAfter(CallBB, BB->name() + ".vc.trap");
      MakeIn(TrapBB, std::make_unique<Instruction>(Opcode::Trap, T.voidTy()));

      auto Cmp = std::make_unique<Instruction>(Opcode::ICmp, T.boolTy());
      Cmp->addOperand(FnSym);
      Cmp->addOperand(M.functionSymbol(Target));
      Cmp->setAttr(uint64_t(ICmpPred::EQ));
      Instruction *CmpI = MakeIn(TestBB, std::move(Cmp));
      auto CondBr = std::make_unique<Instruction>(Opcode::CondBr, T.voidTy());
      CondBr->addOperand(CmpI);
      CondBr->addBlock(CallBB);
      CondBr->addBlock(TrapBB);
      MakeIn(TestBB, std::move(CondBr));
    } else {
      BasicBlock *NextTest =
          F.createBlockAfter(CallBB, BB->name() + ".vc.test" +
                                         std::to_string(K + 1));
      auto Cmp = std::make_unique<Instruction>(Opcode::ICmp, T.boolTy());
      Cmp->addOperand(FnSym);
      Cmp->addOperand(M.functionSymbol(Target));
      Cmp->setAttr(uint64_t(ICmpPred::EQ));
      Instruction *CmpI = MakeIn(TestBB, std::move(Cmp));
      auto CondBr = std::make_unique<Instruction>(Opcode::CondBr, T.voidTy());
      CondBr->addOperand(CmpI);
      CondBr->addBlock(CallBB);
      CondBr->addBlock(NextTest);
      MakeIn(TestBB, std::move(CondBr));
      TestBB = NextTest;
    }
  }

  // Join the results.
  if (!VC->type()->isVoid()) {
    auto Phi = std::make_unique<Instruction>(Opcode::Phi, VC->type());
    for (auto &[V, RB] : Results)
      Phi->addIncoming(V, RB);
    Instruction *P = Cont->insertAt(0, std::move(Phi));
    F.replaceAllUsesWith(VC, P);
  }
  return unsigned(Targets.size());
}

bool concord::transforms::devirtualize(Module &M, PipelineStats &Stats) {
  analysis::ClassHierarchy CHA(M);
  bool Changed = false;
  for (const auto &F : M.functions()) {
    bool FoundOne = true;
    while (FoundOne) {
      FoundOne = false;
      for (BasicBlock *BB : *F) {
        for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
          if (BB->instr(Idx)->opcode() != Opcode::VCall)
            continue;
          lowerVCall(M, *F, BB, Idx, CHA);
          ++Stats.VCallsDevirtualized;
          Changed = true;
          FoundOne = true;
          break;
        }
        if (FoundOne)
          break;
      }
    }
  }
  return Changed;
}
