//===- Devirtualize.cpp - Lower virtual calls to inline test sequences ----===//
//
// Current integrated GPUs cannot do indirect calls, so Concord lowers every
// virtual call into an inline sequence of tests of the loaded vtable entry
// against the possible target function symbols, derived from class
// hierarchy analysis (paper section 3.2).
//
//===----------------------------------------------------------------------===//

#include "analysis/ClassHierarchy.h"
#include "analysis/PointsTo.h"
#include "transforms/Passes.h"

#include <memory>

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

/// Drops CHA candidates whose implementing class shares no inheritance
/// chain with any class the receiver may point to. The points-to classes
/// are static types of allocation sites and chased fields, so a target
/// implemented in class MC stays feasible when MC is on the same chain as
/// some points-to class C (the dynamic type is C or derived-from-C, and
/// such an object dispatches to MC's implementation only if the chains
/// meet). An empty intersection would mean the receiver provably never
/// has a vtable for this slot — keep the CHA set in that case rather than
/// trusting the over-approximation that far.
static void narrowByPointsTo(std::vector<Function *> &Targets,
                             const analysis::PointsTo::ClassSet &CS,
                             PipelineStats &Stats) {
  if (!CS.AllKnown || CS.Classes.empty() || Targets.size() < 2)
    return;
  std::vector<Function *> Narrowed;
  for (Function *T : Targets) {
    const ClassType *MC = T->methodOf();
    bool Feasible = !MC;
    for (const ClassType *C : CS.Classes)
      if (MC && (MC->isBaseOrSelf(C) || C->isBaseOrSelf(MC))) {
        Feasible = true;
        break;
      }
    if (Feasible)
      Narrowed.push_back(T);
  }
  if (!Narrowed.empty() && Narrowed.size() < Targets.size()) {
    ++Stats.VCallsPtsNarrowed;
    Targets = std::move(Narrowed);
  }
}

/// Lowers the VCall at (BB, Idx). Returns the number of candidate targets.
static unsigned lowerVCall(Module &M, Function &F, BasicBlock *BB,
                           size_t Idx, const analysis::ClassHierarchy &CHA,
                           const analysis::PointsTo *PT,
                           PipelineStats &Stats) {
  Instruction *VC = BB->instr(Idx);
  std::vector<Function *> Targets =
      CHA.possibleTargets(VC->vcallClass(), VC->vcallGroup(), VC->vcallSlot());
  assert(!Targets.empty() && "virtual call with no possible target");
  if (PT && VC->numOperands() > 0)
    narrowByPointsTo(Targets, PT->classesOf(VC->operand(0)), Stats);
  TypeContext &T = M.types();

  std::vector<Value *> CallArgs(VC->operands());

  // Single possible target: true devirtualization, no vptr test needed.
  if (Targets.size() == 1) {
    auto Direct = std::make_unique<Instruction>(Opcode::Call, VC->type());
    for (Value *Op : CallArgs)
      Direct->addOperand(Op);
    Direct->setCallee(Targets.front());
    Instruction *D = BB->insertAt(Idx, std::move(Direct));
    F.replaceAllUsesWith(VC, D);
    BB->erase(Idx + 1);
    return 1;
  }

  // Split the block after the vcall.
  BasicBlock *Cont = F.createBlockAfter(BB, BB->name() + ".vc.cont");
  while (BB->size() > Idx + 1)
    Cont->append(BB->take(Idx + 1));
  for (BasicBlock *S : Cont->successors())
    for (Instruction *Phi : S->phis())
      for (unsigned K = 0; K < Phi->numBlocks(); ++K)
        if (Phi->incomingBlock(K) == BB)
          Phi->setBlock(K, Cont);

  // Load the function symbol from the object's vtable:
  //   vptr  = load (u64*)obj          ; vtable CPU address
  //   entry = load vptr[slot]         ; function symbol value
  Value *Obj = CallArgs[0];
  auto MakeIn = [&](BasicBlock *Where, std::unique_ptr<Instruction> I) {
    return Where->append(std::move(I));
  };
  // Detach the vcall but keep it alive: its type/slot are still read below
  // and its uses are rewired to the result phi at the end.
  std::unique_ptr<Instruction> VCOwned = BB->take(Idx);

  auto VptrAddr = std::make_unique<Instruction>(
      Opcode::FieldAddr, T.pointerTo(T.uint64Ty()));
  VptrAddr->addOperand(Obj);
  VptrAddr->setAttr(0);
  Instruction *VptrAddrI = MakeIn(BB, std::move(VptrAddr));

  auto VptrLoad = std::make_unique<Instruction>(Opcode::Load, T.uint64Ty());
  VptrLoad->addOperand(VptrAddrI);
  Instruction *Vptr = MakeIn(BB, std::move(VptrLoad));

  auto VtPtr = std::make_unique<Instruction>(Opcode::Cast,
                                             T.pointerTo(T.uint64Ty()));
  VtPtr->addOperand(Vptr);
  VtPtr->setAttr(uint64_t(CastKind::IntToPtr));
  Instruction *VtPtrI = MakeIn(BB, std::move(VtPtr));

  auto EntryAddr = std::make_unique<Instruction>(Opcode::IndexAddr,
                                                 T.pointerTo(T.uint64Ty()));
  EntryAddr->addOperand(VtPtrI);
  EntryAddr->addOperand(M.constInt(T.int64Ty(), VC->vcallSlot()));
  Instruction *EntryAddrI = MakeIn(BB, std::move(EntryAddr));

  auto EntryLoad = std::make_unique<Instruction>(Opcode::Load, T.uint64Ty());
  EntryLoad->addOperand(EntryAddrI);
  Instruction *FnSym = MakeIn(BB, std::move(EntryLoad));

  // Build the compare chain.
  std::vector<std::pair<Value *, BasicBlock *>> Results;
  BasicBlock *TestBB = BB;
  for (size_t K = 0; K < Targets.size(); ++K) {
    Function *Target = Targets[K];
    BasicBlock *CallBB =
        F.createBlockAfter(TestBB, BB->name() + ".vc.call" +
                                       std::to_string(K));
    auto DirectCall = std::make_unique<Instruction>(Opcode::Call, VC->type());
    for (Value *Op : CallArgs)
      DirectCall->addOperand(Op);
    DirectCall->setCallee(Target);
    Instruction *CallI = MakeIn(CallBB, std::move(DirectCall));
    auto BrCont = std::make_unique<Instruction>(Opcode::Br, T.voidTy());
    BrCont->addBlock(Cont);
    MakeIn(CallBB, std::move(BrCont));
    Results.push_back({CallI, CallBB});

    bool Last = K + 1 == Targets.size();
    if (Last) {
      // Last candidate: branch unconditionally (CHA is exhaustive) but keep
      // a trap block for safety against corrupted vtables.
      BasicBlock *TrapBB =
          F.createBlockAfter(CallBB, BB->name() + ".vc.trap");
      MakeIn(TrapBB, std::make_unique<Instruction>(Opcode::Trap, T.voidTy()));

      auto Cmp = std::make_unique<Instruction>(Opcode::ICmp, T.boolTy());
      Cmp->addOperand(FnSym);
      Cmp->addOperand(M.functionSymbol(Target));
      Cmp->setAttr(uint64_t(ICmpPred::EQ));
      Instruction *CmpI = MakeIn(TestBB, std::move(Cmp));
      auto CondBr = std::make_unique<Instruction>(Opcode::CondBr, T.voidTy());
      CondBr->addOperand(CmpI);
      CondBr->addBlock(CallBB);
      CondBr->addBlock(TrapBB);
      MakeIn(TestBB, std::move(CondBr));
    } else {
      BasicBlock *NextTest =
          F.createBlockAfter(CallBB, BB->name() + ".vc.test" +
                                         std::to_string(K + 1));
      auto Cmp = std::make_unique<Instruction>(Opcode::ICmp, T.boolTy());
      Cmp->addOperand(FnSym);
      Cmp->addOperand(M.functionSymbol(Target));
      Cmp->setAttr(uint64_t(ICmpPred::EQ));
      Instruction *CmpI = MakeIn(TestBB, std::move(Cmp));
      auto CondBr = std::make_unique<Instruction>(Opcode::CondBr, T.voidTy());
      CondBr->addOperand(CmpI);
      CondBr->addBlock(CallBB);
      CondBr->addBlock(NextTest);
      MakeIn(TestBB, std::move(CondBr));
      TestBB = NextTest;
    }
  }

  // Join the results.
  if (!VC->type()->isVoid()) {
    auto Phi = std::make_unique<Instruction>(Opcode::Phi, VC->type());
    for (auto &[V, RB] : Results)
      Phi->addIncoming(V, RB);
    Instruction *P = Cont->insertAt(0, std::move(Phi));
    F.replaceAllUsesWith(VC, P);
  }
  return unsigned(Targets.size());
}

bool concord::transforms::devirtualize(Module &M, PipelineStats &Stats) {
  analysis::ClassHierarchy CHA(M);
  bool Changed = false;
  for (const auto &F : M.functions()) {
    // Points-to over the pre-lowering IR: receivers queried below are
    // original values, so one solve per function covers every vcall even
    // as lowering rewrites the CFG around them.
    std::unique_ptr<analysis::PointsTo> PT;
    if (analysis::pointsToEnabled())
      for (BasicBlock *BB : *F) {
        for (size_t Idx = 0; Idx < BB->size() && !PT; ++Idx)
          if (BB->instr(Idx)->opcode() == Opcode::VCall)
            PT = std::make_unique<analysis::PointsTo>(*F);
        if (PT)
          break;
      }
    bool FoundOne = true;
    while (FoundOne) {
      FoundOne = false;
      for (BasicBlock *BB : *F) {
        for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
          if (BB->instr(Idx)->opcode() != Opcode::VCall)
            continue;
          lowerVCall(M, *F, BB, Idx, CHA, PT.get(), Stats);
          ++Stats.VCallsDevirtualized;
          Changed = true;
          FoundOne = true;
          break;
        }
        if (FoundOne)
          break;
      }
    }
  }
  return Changed;
}
