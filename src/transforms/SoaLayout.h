//===- SoaLayout.h - AoSoA structure-of-arrays layout plan ------*- C++ -*-===//
///
/// \file
/// The coalescing-analysis-driven layout transform and the plan it records
/// for the runtime.
///
/// For a kernel whose accesses to one body-rooted array are all affine
/// per-item element accesses (`base + S*gid + B`, field segment
/// [B, B+bytes) inside an element of stride S) and at least one of them is
/// warp-strided, the pass rewrites those accesses to an AoSoA
/// ("array-of-structures-of-arrays") layout tiled by the SIMD width W:
///
///     soa(gid, seg B) = base + (gid / W)*(S*W) + B*W + (gid % W)*bytes
///
/// One tile packs each field segment of W consecutive items contiguously,
/// so a warp (W consecutive ids) reads a field as one dense line-aligned
/// run — Coalesced on the analysis lattice — while the tile size (S*W
/// bytes) keeps the total slab exactly as large as the AoS original.
///
/// The rewritten program is only correct against a staged slab: the
/// runtime must allocate `tiles * S * W` bytes, copy each planned segment
/// column in (gather from AoS), patch the root pointer slot in the body
/// *copy* to `slab - firstTile*S*W`, and scatter written segments back
/// after the launch. SoaRootPlan records everything that protocol needs.
/// All other analyses (footprint, commutativity, OOB lint, scheduling)
/// keep running on the untransformed program, so hazard edges and
/// summaries are layout-independent; the plan's segments are covered by
/// the base footprint's hulls by construction.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_TRANSFORMS_SOALAYOUT_H
#define CONCORD_TRANSFORMS_SOALAYOUT_H

#include "cir/Function.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace concord {
namespace transforms {

struct PipelineStats;

/// One field segment [Off, Off+Bytes) of an AoS element, packed as its
/// own column per tile.
struct SoaFieldSeg {
  int64_t Off = 0;
  uint64_t Bytes = 0;
  bool Written = false;
};

/// One rewritten array: reached by loading the pointer at byte offset
/// BodySlotOff of the body object, elements of Stride bytes.
struct SoaRootPlan {
  int64_t BodySlotOff = 0;
  int64_t Stride = 0;
  std::vector<SoaFieldSeg> Segs;
  unsigned Rewrites = 0;

  /// Slab bytes one W-item tile occupies (equals the AoS bytes of W
  /// elements).
  uint64_t tileBytes(unsigned SimdWidth) const {
    return uint64_t(Stride) * SimdWidth;
  }
};

/// Everything the runtime must stage for one transformed kernel.
struct SoaKernelPlan {
  unsigned SimdWidth = 16;
  std::vector<SoaRootPlan> Roots;
  bool active() const { return !Roots.empty(); }
};

/// Plans per kernel name, filled by runPipeline when EnableSoaLayout is
/// set. A kernel with no (or no eligible) strided root has no entry.
using SoaModulePlans = std::map<std::string, SoaKernelPlan>;

/// Runs the SOA rewrite on one kernel. Returns the number of accesses
/// rewritten (0 when nothing was eligible); \p Plan describes the staging
/// the caller now owes. Must run before SVM lowering.
unsigned soaLayout(cir::Function &F, PipelineStats &Stats,
                   SoaKernelPlan &Plan);

} // namespace transforms
} // namespace concord

#endif // CONCORD_TRANSFORMS_SOALAYOUT_H
