//===- TailRecursionElim.cpp - Eliminate self tail calls ------------------===//
//
// Concord forbids recursion on the GPU except tail recursion eliminable at
// compile time (paper section 2.1). This pass rewrites self tail calls into
// a branch back to a header placed after the parameter prologue.
//
//===----------------------------------------------------------------------===//

#include "transforms/Passes.h"
#include "transforms/Utils.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

bool concord::transforms::tailRecursionElim(Function &F,
                                            PipelineStats &Stats) {
  if (F.empty())
    return false;

  // Find self tail calls: call @F immediately followed by ret (of the call
  // result, or bare ret in void functions).
  struct Site {
    BasicBlock *BB;
    size_t CallIdx;
  };
  std::vector<Site> Sites;
  for (BasicBlock *BB : F) {
    for (size_t Idx = 0; Idx + 1 < BB->size(); ++Idx) {
      Instruction *I = BB->instr(Idx);
      if (I->opcode() != Opcode::Call || I->callee() != &F)
        continue;
      Instruction *Next = BB->instr(Idx + 1);
      if (Next->opcode() != Opcode::Ret)
        continue;
      if (Next->numOperands() == 1 && Next->operand(0) != I)
        continue;
      Sites.push_back({BB, Idx});
    }
  }
  if (Sites.empty())
    return false;

  // The IRGen prologue stores each scalar argument into an alloca at the
  // top of the entry block. Identify those slots.
  BasicBlock *Entry = F.entry();
  std::map<Argument *, Instruction *> SlotOf;
  std::map<Instruction *, bool> IsPrologueAlloca;
  size_t PrologueEnd = 0;
  for (; PrologueEnd < Entry->size(); ++PrologueEnd) {
    Instruction *I = Entry->instr(PrologueEnd);
    if (I->opcode() == Opcode::Alloca) {
      IsPrologueAlloca[I] = true;
      continue;
    }
    if (I->opcode() == Opcode::Store) {
      auto *Arg = dyn_cast<Argument>(I->operand(0));
      auto *Slot = dyn_cast<Instruction>(I->operand(1));
      if (Arg && Slot && IsPrologueAlloca.count(Slot) && !SlotOf.count(Arg)) {
        SlotOf[Arg] = Slot;
        continue;
      }
    }
    break;
  }

  // Every argument must be rebindable: either it has a slot, or its only
  // use is the prologue store (checked via use counting).
  auto Uses = countUses(F);
  for (unsigned A = 0; A < F.numArgs(); ++A) {
    Argument *Arg = F.arg(A);
    unsigned N = Uses.count(Arg) ? Uses[Arg] : 0;
    bool HasSlot = SlotOf.count(Arg) != 0;
    if ((HasSlot && N != 1) || (!HasSlot && N != 0))
      return false; // Argument used directly; cannot rebind.
  }

  // Split the entry: everything after the prologue moves into the header.
  BasicBlock *Header = F.createBlockAfter(Entry, "tre.header");
  while (Entry->size() > PrologueEnd)
    Header->append(Entry->take(PrologueEnd));
  {
    auto Br = std::make_unique<Instruction>(Opcode::Br,
                                            F.parent()->types().voidTy());
    Br->addBlock(Header);
    Entry->append(std::move(Br));
  }
  // Phis naming Entry as predecessor now come from Header... Entry had the
  // original terminator moved into Header, so successors' phis referencing
  // Entry must point at Header instead.
  for (BasicBlock *S : Header->successors())
    for (Instruction *Phi : S->phis())
      for (unsigned K = 0; K < Phi->numBlocks(); ++K)
        if (Phi->incomingBlock(K) == Entry)
          Phi->setBlock(K, Header);

  // Re-scan sites: the split moved instructions out of the entry block, so
  // the indices collected above are stale.
  Sites.clear();
  for (BasicBlock *BB : F) {
    for (size_t Idx = 0; Idx + 1 < BB->size(); ++Idx) {
      Instruction *I = BB->instr(Idx);
      if (I->opcode() != Opcode::Call || I->callee() != &F)
        continue;
      Instruction *Next = BB->instr(Idx + 1);
      if (Next->opcode() != Opcode::Ret)
        continue;
      if (Next->numOperands() == 1 && Next->operand(0) != I)
        continue;
      Sites.push_back({BB, Idx});
    }
  }

  // Rewrite each site: store new argument values into the slots, branch to
  // the header. Sites are rewritten back-to-front so indices stay valid
  // when a block contains several.
  for (auto It = Sites.rbegin(); It != Sites.rend(); ++It) {
    Site &S = *It;
    Instruction *Call = S.BB->instr(S.CallIdx);
    // Drop the ret first, then the call.
    S.BB->erase(S.CallIdx + 1);
    std::vector<Value *> NewArgs(Call->operands());
    S.BB->erase(S.CallIdx);
    size_t InsertIdx = S.CallIdx;
    for (unsigned A = 0; A < F.numArgs(); ++A) {
      auto It = SlotOf.find(F.arg(A));
      if (It == SlotOf.end())
        continue;
      auto St = std::make_unique<Instruction>(Opcode::Store,
                                              F.parent()->types().voidTy());
      St->addOperand(NewArgs[A]);
      St->addOperand(It->second);
      S.BB->insertAt(InsertIdx++, std::move(St));
    }
    auto Br = std::make_unique<Instruction>(Opcode::Br,
                                            F.parent()->types().voidTy());
    Br->addBlock(Header);
    S.BB->insertAt(InsertIdx, std::move(Br));
    ++Stats.TailCallsEliminated;
  }
  return true;
}
