//===- Pipeline.cpp - The Concord GPU compilation pipeline ----------------===//

#include "cir/Verifier.h"
#include "transforms/Passes.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

bool concord::transforms::runPipeline(Module &M, const PipelineOptions &Opts,
                                      PipelineStats &Stats,
                                      std::string *VerifyError) {
  // Tail recursion first: it unlocks inlining of self-tail-recursive
  // helpers (the one form of recursion Concord permits, section 2.1).
  for (const auto &F : M.functions())
    if (!F->empty())
      tailRecursionElim(*F, Stats);

  // Virtual calls become inline test sequences of direct calls (3.2)...
  devirtualize(M, Stats);

  // ...which the inliner then flattens into the kernels, making pointer
  // provenance (private vs shared) visible to the SVM lowering.
  // Only kernels execute on the device; after exhaustive inlining the
  // other functions are dead weight that code generation skips.
  for (const auto &F : M.functions()) {
    if (F->empty() || !F->isKernel())
      continue;
    inlineCalls(M, *F, Stats);
    simplifyCFG(*F, Stats);
    mem2reg(*F, Stats);
    constantFold(*F, Stats);
    cse(*F, Stats);
    dce(*F, Stats);
    simplifyCFG(*F, Stats);

    promoteBodyFields(*F, Stats);
    cse(*F, Stats);
    dce(*F, Stats);

    loopUnroll(*F, Opts, Stats);
    constantFold(*F, Stats);
    dce(*F, Stats);

    if (Opts.EnableL3Opt)
      l3ContentionOpt(*F, Stats);

    svmLowering(*F, Opts.Svm, Stats);

    if (Opts.CleanupAfterSvm) {
      licm(*F, Stats);
      cse(*F, Stats);
      constantFold(*F, Stats);
      dce(*F, Stats);
      simplifyCFG(*F, Stats);
    }
  }

  auto Errors = verifyModule(M);
  if (!Errors.empty()) {
    if (VerifyError)
      *VerifyError = Errors.front();
    return false;
  }
  return true;
}
