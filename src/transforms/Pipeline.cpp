//===- Pipeline.cpp - The Concord GPU compilation pipeline ----------------===//

#include "analysis/AddressSpace.h"
#include "analysis/Coalescing.h"
#include "analysis/Commutativity.h"
#include "analysis/Footprint.h"
#include "analysis/KernelChecks.h"
#include "analysis/PointsTo.h"
#include "analysis/Uniformity.h"
#include "cir/Verifier.h"
#include "transforms/Passes.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

namespace {

/// Runs passes and, under VerifyEachPass, verifies the module after each
/// one so a miscompiling pass is caught at its own boundary (and named)
/// instead of surfacing as a wrong benchmark number nine passes later.
class PassRunner {
public:
  PassRunner(Module &M, const PipelineOptions &Opts,
             std::vector<std::string> &Errors)
      : M(M), Opts(Opts), Errors(Errors) {}

  /// Runs \p Pass; returns false when post-pass verification failed, in
  /// which case the pipeline must stop (later passes would consume broken
  /// IR and mask the real culprit).
  template <typename Fn> bool run(const char *PassName, Fn &&Pass) {
    Pass();
    if (Opts.AfterPassHook)
      Opts.AfterPassHook(M, PassName);
    if (!Opts.VerifyEachPass)
      return true;
    std::vector<std::string> E = verifyModule(M);
    for (const std::string &Msg : E)
      Errors.push_back("after pass '" + std::string(PassName) +
                       "': " + Msg);
    return E.empty();
  }

private:
  Module &M;
  const PipelineOptions &Opts;
  std::vector<std::string> &Errors;
};

///// Post-pipeline static checks (tentpole of the analysis layer): offload
/// legality with graceful CPU fallback, the PTROPT address-space
/// invariant, the work-item race lint, and (given a launch context) the
/// static out-of-bounds lint over refined footprint windows.
void runStaticChecks(Module &M, const PipelineOptions &Opts,
                     std::vector<std::string> &Errors,
                     DiagnosticEngine *Diags) {
  for (const auto &F : M.functions()) {
    if (F->empty() || !F->isKernel())
      continue;

    auto Legality = analysis::checkKernelLegality(M, *F);
    if (!Legality.empty()) {
      // Illegal kernels are not miscompiles: report them as unsupported
      // features (section 2.1 semantics) so the runtime runs the
      // construct natively instead, and skip the soundness checks that
      // assume a fully lowered kernel.
      if (Diags)
        for (const analysis::LegalityIssue &Issue : Legality)
          Diags->unsupported(Issue.Loc, "@" + F->name() + ": " +
                                            Issue.Message);
      continue;
    }

    if (Opts.Svm != SvmMode::None)
      for (const analysis::AddressSpaceViolation &V :
           analysis::checkAddressSpaces(*F))
        Errors.push_back("address-space check: @" + F->name() +
                         (V.Loc.isValid() ? " (" + V.Loc.str() + ")" : "") +
                         ": " + V.Message);

    if (Diags)
      for (const analysis::RaceFinding &R : analysis::lintUniformStores(*F))
        Diags->warning(R.Loc, "@" + F->name() + ": " + R.Message);

    // Pointer alias lint: stores whose address may reach a shared
    // allocation pool can collide with another work-item's access to the
    // same pool. Points-to is an over-approximation, so these are
    // warnings — real races surface here, but so may sharded pools the
    // analysis cannot split.
    if (Diags && analysis::pointsToEnabled())
      for (const analysis::AliasFinding &A :
           analysis::lintPointerAliases(*F))
        Diags->warning(A.StoreLoc, "@" + F->name() + ": " + A.Message);

    // Uncoalesced-access lint: body-rooted strided AoS field walks whose
    // modelled warp transaction touches a multiple of the packed-ideal
    // cache lines. Warnings — the SOA layout transform (or a manual
    // layout change) is the fix, and the kernel still runs correctly.
    if (Diags)
      for (const analysis::CoalescingFinding &C :
           analysis::lintUncoalesced(*F))
        Diags->warning(C.Loc, "@" + F->name() + ": " + C.Message);

    // Reduction lint: read-modify-write sequences that look like a
    // reduction but combine with a non-associative operator will never
    // qualify for the concurrent-accumulate protocol — usually a bug in
    // the kernel, always a lost parallelism opportunity worth naming.
    if (Diags)
      for (const analysis::AccumRejection &R :
           analysis::computeCommutativity(*F, Opts.RelaxedFPReduction)
               .Rejections)
        if (R.LooksReductive)
          Diags->warning(R.Loc, "@" + F->name() +
                                    ": non-associative reduction: " +
                                    R.Message);

    // Static out-of-bounds lint: with a launch context, provable footprint
    // windows that escape their root allocation fail the pipeline here,
    // before any device ever runs the kernel.
    if (Opts.OobLint.Enabled)
      for (const analysis::OobFinding &O : analysis::lintFootprintBounds(
               analysis::computeFootprint(*F), F->name(),
               Opts.OobLint.BodyPtr, Opts.OobLint.Base, Opts.OobLint.Count,
               Opts.OobLint.Region, Opts.OobLint.AllocExtent))
        Errors.push_back("bounds check: @" + O.Kernel + ": " + O.Message);
  }

  // Footprint hazard lint: for every kernel pair, can two concurrent
  // submissions conflict on shared memory? Notes, not errors — the
  // scheduler's concrete hazard tracking stays authoritative at runtime.
  if (Diags && Opts.ReportFootprintHazards)
    for (const analysis::HazardFinding &H : analysis::footprintHazards(M))
      Diags->note(H.Loc, "footprint hazard @" + H.KernelA + " vs @" +
                             H.KernelB + ": " + H.Message);
}

std::string joinErrors(const std::vector<std::string> &Errors) {
  std::string Joined;
  for (const std::string &E : Errors) {
    if (!Joined.empty())
      Joined += "\n";
    Joined += E;
  }
  return Joined;
}

} // namespace

bool concord::transforms::runPipeline(Module &M, const PipelineOptions &Opts,
                                      PipelineStats &Stats,
                                      std::string *VerifyError,
                                      DiagnosticEngine *Diags,
                                      SoaModulePlans *SoaPlans) {
  std::vector<std::string> Errors;
  auto Fail = [&]() {
    if (VerifyError)
      *VerifyError = joinErrors(Errors);
    return false;
  };
  PassRunner R(M, Opts, Errors);

  // Tail recursion first: it unlocks inlining of self-tail-recursive
  // helpers (the one form of recursion Concord permits, section 2.1).
  if (!R.run("tailRecursionElim", [&] {
        for (const auto &F : M.functions())
          if (!F->empty())
            tailRecursionElim(*F, Stats);
      }))
    return Fail();

  // Virtual calls become inline test sequences of direct calls (3.2)...
  if (!R.run("devirtualize", [&] { devirtualize(M, Stats); }))
    return Fail();

  // ...which the inliner then flattens into the kernels, making pointer
  // provenance (private vs shared) visible to the SVM lowering.
  // Only kernels execute on the device; after exhaustive inlining the
  // other functions are dead weight that code generation skips.
  for (const auto &F : M.functions()) {
    if (F->empty() || !F->isKernel())
      continue;
    auto OnKernel = [&](const char *Name, auto Pass) {
      return R.run(Name, [&] { Pass(*F, Stats); });
    };
    bool Ok =
        OnKernel("inlineCalls",
                 [&](Function &K, PipelineStats &S) { inlineCalls(M, K, S); }) &&
        OnKernel("simplifyCFG", simplifyCFG) &&
        OnKernel("mem2reg", mem2reg) &&
        OnKernel("constantFold", constantFold) &&
        OnKernel("cse", cse) &&
        OnKernel("dce", dce) &&
        OnKernel("simplifyCFG", simplifyCFG) &&
        OnKernel("promoteBodyFields", promoteBodyFields) &&
        OnKernel("cse", cse) &&
        OnKernel("dce", dce) &&
        OnKernel("loopUnroll",
                 [&](Function &K, PipelineStats &S) {
                   loopUnroll(K, Opts, S);
                 }) &&
        OnKernel("constantFold", constantFold) &&
        OnKernel("dce", dce);
    if (!Ok)
      return Fail();

    // The AoSoA rewrite sees the scalar-optimized, pre-lowering address
    // chains; its staging plan goes back to the caller (the runtime owes
    // the slab protocol described in SoaLayout.h for any active plan).
    if (Opts.EnableSoaLayout) {
      if (!R.run("soaLayout", [&] {
            SoaKernelPlan P;
            soaLayout(*F, Stats, P);
            if (P.active() && SoaPlans)
              (*SoaPlans)[F->name()] = std::move(P);
          }))
        return Fail();
    }

    if (Opts.EnableL3Opt && !OnKernel("l3ContentionOpt", l3ContentionOpt))
      return Fail();

    if (!OnKernel("svmLowering", [&](Function &K, PipelineStats &S) {
          svmLowering(K, Opts.Svm, S);
        }))
      return Fail();

    if (Opts.CleanupAfterSvm) {
      bool CleanOk = OnKernel("licm", licm) && OnKernel("cse", cse) &&
                     OnKernel("constantFold", constantFold) &&
                     OnKernel("dce", dce) &&
                     OnKernel("simplifyCFG", simplifyCFG);
      if (!CleanOk)
        return Fail();
    }
  }

  // Final whole-module verification, independent of VerifyEachPass.
  std::vector<std::string> FinalErrors = verifyModule(M);
  Errors.insert(Errors.end(), FinalErrors.begin(), FinalErrors.end());
  if (!Errors.empty())
    return Fail();

  if (Opts.RunStaticChecks) {
    runStaticChecks(M, Opts, Errors, Diags);
    if (!Errors.empty())
      return Fail();
  }
  return true;
}
