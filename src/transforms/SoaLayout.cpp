//===- SoaLayout.cpp ------------------------------------------------------===//

#include "transforms/SoaLayout.h"

#include "analysis/Coalescing.h"
#include "cir/BasicBlock.h"
#include "cir/IRBuilder.h"
#include "cir/Instruction.h"
#include "cir/Module.h"
#include "transforms/Passes.h"

#include <algorithm>
#include <set>

using namespace concord;
using namespace concord::cir;
using namespace concord::analysis;
using namespace concord::transforms;

namespace {

/// The Load instruction producing the array base pointer of an address
/// chain — the first pointer load on the base walk. With a single-hop
/// root path this is exactly the body-slot load.
Instruction *findRootLoad(Value *V, unsigned Depth = 0) {
  auto *I = dyn_cast<Instruction>(V);
  if (!I || Depth > 128)
    return nullptr;
  switch (I->opcode()) {
  case Opcode::Load:
    return I;
  case Opcode::Cast:
  case Opcode::CpuToGpu:
  case Opcode::GpuToCpu:
  case Opcode::FieldAddr:
  case Opcode::IndexAddr:
    return findRootLoad(I->operand(0), Depth + 1);
  default:
    return nullptr;
  }
}

constexpr unsigned log2u(unsigned V) {
  unsigned L = 0;
  while ((1u << L) < V)
    ++L;
  return L;
}

/// Matches an address that is a constant byte offset from the body object
/// (the kernel's first argument); \p Off receives the offset.
bool bodyConstOffset(const Value *V, int64_t &Off, unsigned Depth = 0) {
  if (Depth > 128)
    return false;
  if (const auto *A = dyn_cast<Argument>(V)) {
    if (A->index() != 0)
      return false;
    Off = 0;
    return true;
  }
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return false;
  switch (I->opcode()) {
  case Opcode::Cast:
  case Opcode::CpuToGpu:
  case Opcode::GpuToCpu:
    return bodyConstOffset(I->operand(0), Off, Depth + 1);
  case Opcode::FieldAddr:
    if (!bodyConstOffset(I->operand(0), Off, Depth + 1))
      return false;
    Off += int64_t(I->attr());
    return true;
  case Opcode::IndexAddr: {
    if (!bodyConstOffset(I->operand(0), Off, Depth + 1))
      return false;
    const auto *PT = dyn_cast<PointerType>(I->type());
    const auto *Ix = dyn_cast<ConstantInt>(I->operand(1));
    if (!PT || !Ix)
      return false;
    Off += Ix->sext() * int64_t(PT->pointee()->sizeInBytes());
    return true;
  }
  default:
    return false;
  }
}

/// True when some address derived from the array pointer at body slot
/// \p Slot escapes as a *value*: stored to memory, compared, fed to a phi
/// or anything else that is not an address computation or the pointer
/// operand of a direct load/store. The rewrite redirects the slot to the
/// column slab, so an escaped derived address would leak a slab-relative
/// pointer into data the host (or a later launch) reads — e.g. a kernel
/// building `nodes[i].next = &nodes[i+1]`. Such roots are ineligible.
bool slotAddressEscapes(Function &F, int64_t Slot) {
  std::vector<const Value *> DerivedVec;
  std::set<const Value *> Derived;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      int64_t Off = 0;
      if (I->opcode() == Opcode::Load &&
          bodyConstOffset(I->pointerOperand(), Off) && Off == Slot)
        Derived.insert(I);
    }
  bool Changed = !Derived.empty();
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB) {
        if (Derived.count(I))
          continue;
        switch (I->opcode()) {
        case Opcode::Cast:
        case Opcode::CpuToGpu:
        case Opcode::GpuToCpu:
        case Opcode::FieldAddr:
        case Opcode::IndexAddr:
          if (Derived.count(I->operand(0))) {
            Derived.insert(I);
            Changed = true;
          }
          break;
        default:
          break;
        }
      }
  }
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned K = 0; K < I->numOperands(); ++K) {
        if (!Derived.count(I->operand(K)))
          continue;
        switch (I->opcode()) {
        case Opcode::Load:
          break; // The address operand of the access itself.
        case Opcode::Store:
          if (K == 1)
            break;    // Address position.
          return true; // The derived address is the stored value.
        case Opcode::Cast:
        case Opcode::CpuToGpu:
        case Opcode::GpuToCpu:
        case Opcode::FieldAddr:
          break; // Further address computation (tracked above).
        case Opcode::IndexAddr:
          if (K == 0)
            break;    // Base position.
          return true; // A pointer used as an index.
        default:
          return true; // Compare, phi, select, call, return, memcpy, ...
        }
      }
  return false;
}

} // namespace

unsigned concord::transforms::soaLayout(Function &F, PipelineStats &Stats,
                                        SoaKernelPlan &Plan) {
  Plan.Roots.clear();
  const unsigned W = Plan.SimdWidth ? Plan.SimdWidth : 16;
  if ((W & (W - 1)) != 0)
    return 0;
  KernelCoalescing KC = computeCoalescing(F, W);

  // A kernel that writes the body object directly could clobber a root
  // pointer slot mid-launch; the staged copy would diverge. Bail.
  for (const CoalescingAccess &A : KC.Accesses)
    if (A.Write && A.RootKnown && A.RootPath.empty())
      return 0;

  // Candidate roots: single-hop body slots with at least one strided
  // access. Eligibility then requires *every* access through the slot to
  // be an affine per-item element access of one common stride.
  std::vector<int64_t> Slots;
  for (const CoalescingAccess &A : KC.Accesses)
    if (A.Pattern == AccessPattern::Strided && A.RootKnown &&
        A.RootPath.size() == 1 &&
        std::find(Slots.begin(), Slots.end(), A.RootPath[0]) == Slots.end())
      Slots.push_back(A.RootPath[0]);
  std::sort(Slots.begin(), Slots.end());

  unsigned Total = 0;
  for (int64_t Slot : Slots) {
    std::vector<const CoalescingAccess *> On;
    for (const CoalescingAccess &A : KC.Accesses)
      if (A.RootKnown && A.RootPath.size() == 1 && A.RootPath[0] == Slot)
        On.push_back(&A);

    int64_t S = 0;
    bool Eligible = true, AnyStrided = false;
    for (const CoalescingAccess *A : On) {
      if (!A->Affine || A->TileBytes != 0 || A->LaneBytes != 0 ||
          A->GidBytes <= 0 || A->At->opcode() == Opcode::Memcpy) {
        Eligible = false;
        break;
      }
      if (S == 0)
        S = A->GidBytes;
      if (A->GidBytes != S || A->ConstOff < 0 ||
          A->ConstOff + int64_t(A->AccessBytes) > S) {
        Eligible = false;
        break;
      }
      AnyStrided |= A->Pattern == AccessPattern::Strided;
    }
    if (!Eligible || !AnyStrided || S <= 0)
      continue;
    if (slotAddressEscapes(F, Slot))
      continue;

    // Field segments must be identical or disjoint: the column mapping
    // is per segment, so a partial overlap would alias two columns.
    SoaRootPlan RP;
    RP.BodySlotOff = Slot;
    RP.Stride = S;
    for (const CoalescingAccess *A : On) {
      bool Merged = false, Bad = false;
      for (SoaFieldSeg &Seg : RP.Segs) {
        if (Seg.Off == A->ConstOff && Seg.Bytes == A->AccessBytes) {
          Seg.Written |= A->Write;
          Merged = true;
          break;
        }
        if (A->ConstOff < Seg.Off + int64_t(Seg.Bytes) &&
            Seg.Off < A->ConstOff + int64_t(A->AccessBytes)) {
          Bad = true;
          break;
        }
      }
      if (Bad) {
        RP.Segs.clear();
        break;
      }
      if (!Merged)
        RP.Segs.push_back({A->ConstOff, A->AccessBytes, A->Write});
    }
    if (RP.Segs.empty())
      continue;
    std::sort(RP.Segs.begin(), RP.Segs.end(),
              [](const SoaFieldSeg &A, const SoaFieldSeg &B) {
                return A.Off < B.Off;
              });

    // Rewrite every access through this slot to the AoSoA address
    //   base + (gid >> log2 W)*(S*W) + B*W + (gid & (W-1))*bytes.
    Module &M = *F.parent();
    IRBuilder Bld(M);
    Type *I64 = M.types().int64Ty();
    Type *I8Ptr = M.types().pointerTo(M.types().int8Ty());
    for (const CoalescingAccess *A : On) {
      auto *At = const_cast<Instruction *>(A->At);
      Value *PtrOp = At->opcode() == Opcode::Memcpy ? At->operand(0)
                                                    : At->pointerOperand();
      Instruction *Root = findRootLoad(PtrOp);
      if (!Root)
        continue; // Unreachable given resolution above; stay safe.
      BasicBlock *BB = At->parent();
      Bld.setInsertAt(BB, BB->indexOf(At));
      Bld.setLoc(At->loc());
      Value *Gid = Bld.createDeviceQuery(Opcode::GlobalId);
      Value *G64 = Bld.createCast(CastKind::SExt, Gid, I64);
      Value *Tile = Bld.createBinOp(
          Opcode::LShr, G64, M.constInt(I64, log2u(W)), "soa.tile");
      Value *Lane = Bld.createBinOp(Opcode::And, G64,
                                    M.constInt(I64, W - 1), "soa.lane");
      Value *TileOff = Bld.createBinOp(
          Opcode::Mul, Tile, M.constInt(I64, uint64_t(S) * W));
      Value *LaneOff = Bld.createBinOp(
          Opcode::Mul, Lane, M.constInt(I64, A->AccessBytes));
      Value *Sum = Bld.createBinOp(
          Opcode::Add, TileOff,
          M.constInt(I64, uint64_t(A->ConstOff) * W));
      Sum = Bld.createBinOp(Opcode::Add, Sum, LaneOff, "soa.off");
      Value *Base8 = Bld.createCast(CastKind::BitCast, Root, I8Ptr);
      Value *Addr8 = Bld.createIndexAddr(Base8, Sum);
      Value *Addr =
          Bld.createCast(CastKind::BitCast, Addr8, PtrOp->type(), "soa.addr");
      At->replaceUsesOfWith(PtrOp, Addr);
      ++RP.Rewrites;
    }
    Total += RP.Rewrites;
    Stats.SoaRewrites += RP.Rewrites;
    Plan.SimdWidth = W;
    Plan.Roots.push_back(std::move(RP));
  }
  return Total;
}
