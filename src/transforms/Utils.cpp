//===- Utils.cpp ----------------------------------------------------------===//

#include "transforms/Utils.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

std::unique_ptr<Instruction> concord::transforms::cloneInstruction(
    const Instruction *I, const std::map<Value *, Value *> &ValueMap,
    const std::map<BasicBlock *, BasicBlock *> &BlockMap) {
  auto C = std::make_unique<Instruction>(I->opcode(), I->type());
  C->setAttr(I->attr());
  C->setAuxType(I->auxType());
  C->setCallee(I->callee());
  C->setLoc(I->loc());
  if (I->opcode() == Opcode::VCall)
    C->setVCallTarget(I->vcallClass(), I->vcallGroup(), I->vcallSlot());
  for (Value *Op : I->operands()) {
    auto It = ValueMap.find(Op);
    C->addOperand(It == ValueMap.end() ? Op : It->second);
  }
  for (BasicBlock *BB : I->blocks()) {
    auto It = BlockMap.find(BB);
    C->addBlock(It == BlockMap.end() ? BB : It->second);
  }
  return C;
}

std::map<Value *, unsigned> concord::transforms::countUses(Function &F) {
  std::map<Value *, unsigned> Uses;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (Value *Op : I->operands())
        ++Uses[Op];
  return Uses;
}

bool concord::transforms::dependsOn(Value *V, Value *Root, unsigned Depth) {
  if (V == Root)
    return true;
  if (Depth == 0)
    return false;
  auto *I = dyn_cast<Instruction>(V);
  if (!I || I->isPhi())
    return false;
  for (Value *Op : I->operands())
    if (dependsOn(Op, Root, Depth - 1))
      return true;
  return false;
}
