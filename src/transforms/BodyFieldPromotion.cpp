//===- BodyFieldPromotion.cpp - Register promotion of Body fields ---------===//
//
// Section 4 of the paper: "register promotion should be applied
// aggressively to eliminate memory loads of the same location, in
// particular, across loop iterations". The highest-value case is the Body
// object itself: parallel_for_hetero takes `const Body &`, so its fields
// cannot change during the offloaded loop. This pass hoists every load of
// a Body field (an address rooted at the kernel's body-pointer argument
// with a constant offset) to a single load in the entry block, turning
// repeated this->field accesses inside loops into registers.
//
// Applied only when the kernel provably never stores through a
// body-rooted address (reduction kernels mutate their private Body copy
// through the scratch pointer, which is not argument-rooted, so they are
// unaffected either way).
//
//===----------------------------------------------------------------------===//

#include "transforms/Passes.h"

#include <map>
#include <set>

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

namespace {

/// Computes the constant byte offset of \p Addr from the kernel body
/// argument, walking IntToPtr/BitCast/FieldAddr chains. Returns false when
/// the address is not a constant-offset body address.
bool bodyOffsetOf(Value *Addr, Argument *BodyArg, uint64_t *Offset) {
  uint64_t Acc = 0;
  Value *Cur = Addr;
  for (unsigned Depth = 0; Depth < 32; ++Depth) {
    if (Cur == BodyArg) {
      *Offset = Acc;
      return true;
    }
    auto *I = dyn_cast<Instruction>(Cur);
    if (!I)
      return false;
    switch (I->opcode()) {
    case Opcode::FieldAddr:
      Acc += I->attr();
      Cur = I->operand(0);
      break;
    case Opcode::Cast:
      if (I->castKind() != CastKind::IntToPtr &&
          I->castKind() != CastKind::BitCast &&
          I->castKind() != CastKind::PtrToInt)
        return false;
      Cur = I->operand(0);
      break;
    case Opcode::IndexAddr: {
      auto *C = dyn_cast<ConstantInt>(I->operand(1));
      if (!C)
        return false;
      Acc += uint64_t(C->sext()) *
             cast<PointerType>(I->type())->pointee()->sizeInBytes();
      Cur = I->operand(0);
      break;
    }
    default:
      return false;
    }
  }
  return false;
}

} // namespace

bool concord::transforms::promoteBodyFields(Function &F,
                                            PipelineStats &Stats) {
  if (!F.isKernel() || F.empty() || F.numArgs() == 0)
    return false;
  Argument *BodyArg = F.arg(0);
  if (!BodyArg->type()->isInteger())
    return false;

  // Bail out if anything stores through a body-rooted address: the Body is
  // then not used const-ly (outside the paper's programming model, but be
  // safe).
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      uint64_t Off = 0;
      if (I->opcode() == Opcode::Store &&
          bodyOffsetOf(I->operand(1), BodyArg, &Off))
        return false;
      if (I->opcode() == Opcode::Memcpy &&
          bodyOffsetOf(I->operand(0), BodyArg, &Off))
        return false;
    }
  }

  // Collect body-field loads.
  struct Site {
    Instruction *Load;
    uint64_t Offset;
  };
  std::vector<Site> Sites;
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      uint64_t Off = 0;
      if (I->opcode() == Opcode::Load &&
          bodyOffsetOf(I->operand(0), BodyArg, &Off))
        Sites.push_back({I, Off});
    }
  }
  if (Sites.empty())
    return false;

  // Materialize one load per (offset, type) at the very top of the entry
  // block: the function may have been flattened into a single block, so
  // inserting before the terminator would not dominate the uses.
  Module &M = *F.parent();
  BasicBlock *Entry = F.entry();
  std::map<std::pair<uint64_t, Type *>, Value *> Promoted;
  size_t Cursor = 0;

  for (Site &S : Sites) {
    auto Key = std::make_pair(S.Offset, S.Load->type());
    auto It = Promoted.find(Key);
    if (It == Promoted.end()) {
      size_t At = Cursor;
      auto Ptr = std::make_unique<Instruction>(
          Opcode::Cast, M.types().pointerTo(M.types().uint8Ty()));
      Ptr->addOperand(BodyArg);
      Ptr->setAttr(uint64_t(CastKind::IntToPtr));
      Instruction *PtrI = Entry->insertAt(At++, std::move(Ptr));

      auto Addr = std::make_unique<Instruction>(
          Opcode::FieldAddr, M.types().pointerTo(S.Load->type()));
      Addr->addOperand(PtrI);
      Addr->setAttr(S.Offset);
      Instruction *AddrI = Entry->insertAt(At++, std::move(Addr));

      auto NewLoad =
          std::make_unique<Instruction>(Opcode::Load, S.Load->type());
      NewLoad->addOperand(AddrI);
      NewLoad->setName("body.field");
      Instruction *LoadI = Entry->insertAt(At++, std::move(NewLoad));
      Cursor = At;
      It = Promoted.emplace(Key, LoadI).first;
    }
    if (S.Load != It->second) {
      F.replaceAllUsesWith(S.Load, It->second);
      BasicBlock *BB = S.Load->parent();
      BB->erase(BB->indexOf(S.Load));
      ++Stats.InstructionsRemoved;
    }
  }
  (void)Stats;
  return true;
}
