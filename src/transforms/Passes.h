//===- Passes.h - Concord optimization passes -------------------*- C++ -*-===//
///
/// \file
/// The Concord compiler's transformation passes and the pipelines that
/// correspond to the paper's evaluated configurations:
///
///   GPU          - naive eager SVM translation, no cleanup of translations
///   GPU+PTROPT   - hybrid dual-representation translation + DCE + hoisting
///                  (section 4.1)
///   GPU+L3OPT    - cache-line contention loop staggering (section 4.2)
///   GPU+ALL      - both
///
/// All pipelines run the standard scalar optimizations (register promotion,
/// CSE, constant folding, DCE, loop unrolling bounded by max-live) that
/// section 4 lists as prerequisites for exploiting the GPU register file.
///
//===----------------------------------------------------------------------===//

#ifndef CONCORD_TRANSFORMS_PASSES_H
#define CONCORD_TRANSFORMS_PASSES_H

#include "analysis/Footprint.h"
#include "cir/Module.h"
#include "support/Diagnostics.h"
#include "transforms/SoaLayout.h"
#include <cstdint>
#include <functional>
#include <string>

namespace concord {
namespace transforms {

/// SVM pointer-translation placement strategy (section 4.1).
enum class SvmMode {
  None,  ///< No translation inserted (CPU execution / tests).
  Eager, ///< Translate at def; convert back before pointer stores.
  Lazy,  ///< Translate immediately before every dereference.
  /// PTROPT: keep CPU and GPU representations of every pointer, pick per
  /// use, let DCE drop the unused ones and LICM hoist the rest.
  Hybrid,
};

struct PipelineOptions {
  SvmMode Svm = SvmMode::Hybrid;
  bool EnableL3Opt = true;
  /// Physical registers available per work-item; bounds unroll (section 4).
  unsigned NumRegisters = 128;
  /// Full-unroll threshold (constant-trip-count loops only).
  unsigned UnrollMaxTrip = 8;
  bool EnableUnroll = true;
  /// Run cleanup (CSE/DCE/LICM) after SVM lowering; off reproduces the
  /// naive "GPU" baseline configuration.
  bool CleanupAfterSvm = true;
  /// Run the coalescing-driven AoSoA structure-of-arrays rewrite
  /// (transforms/SoaLayout). Off by default everywhere: the rewritten
  /// program is only correct against the staging protocol described in
  /// SoaLayout.h, so only callers that honor the returned SoaModulePlans
  /// (the runtime's dedicated SOA compile) may enable it.
  bool EnableSoaLayout = false;

  /// Run the (dominance-strengthened) verifier after every pass and stop
  /// at the first pass that breaks the IR, naming it in the error. Slower;
  /// meant for debugging miscompiles and for tests.
  bool VerifyEachPass = false;
  /// Post-pipeline static checks: offload legality (reported as an
  /// unsupported-feature diagnostic so the runtime degrades to native CPU
  /// execution), SVM address-space soundness (a verification failure), and
  /// the work-item race lint (warnings).
  bool RunStaticChecks = true;
  /// With RunStaticChecks: also run the footprint hazard lint, reporting
  /// for every kernel pair whether concurrent submission can conflict on
  /// shared memory (note diagnostics naming the offending access). Off by
  /// default — single-kernel modules mostly pair with themselves.
  bool ReportFootprintHazards = false;
  /// Admit floating-point reductions (FAdd/Fmin/Fmax read-modify-writes)
  /// as accumulate windows in the commutativity analysis. FP addition is
  /// not associative, so concurrent shadow-merge execution can differ from
  /// the serial schedule in the last ulps; off by default, opt in per
  /// runtime when that is acceptable.
  bool RelaxedFPReduction = false;
  /// Instrumentation hook invoked after every pass with the pass name.
  /// Tests use it to inject IR corruption and check that VerifyEachPass
  /// attributes the breakage to the right pass.
  std::function<void(cir::Module &, const char *)> AfterPassHook;

  /// Launch context for the static out-of-bounds lint (part of
  /// RunStaticChecks). When enabled, every legal kernel's provable
  /// footprint windows — Exact/Affine entries with guard clamps applied —
  /// are evaluated for the launch of items [Base, Base+Count) with the
  /// body object at BodyPtr and checked against their root allocations'
  /// extents. A window provably escaping its allocation (the classic
  /// unguarded `out[i+1]`) is a pipeline *error* with a source location:
  /// the kernel never compiles, let alone runs. The paper's nine
  /// workloads lint clean. See analysis::lintFootprintBounds.
  struct OobLintContext {
    bool Enabled = false;
    const void *BodyPtr = nullptr;
    int64_t Base = 0;
    int64_t Count = 0;
    svm::MemRange Region{};
    analysis::AllocExtentFn AllocExtent;
  };
  OobLintContext OobLint;

  /// The paper's four evaluated configurations.
  static PipelineOptions gpuBaseline() {
    PipelineOptions O;
    O.Svm = SvmMode::Eager;
    O.EnableL3Opt = false;
    O.CleanupAfterSvm = false;
    return O;
  }
  static PipelineOptions gpuPtrOpt() {
    PipelineOptions O;
    O.Svm = SvmMode::Hybrid;
    O.EnableL3Opt = false;
    O.CleanupAfterSvm = true;
    return O;
  }
  static PipelineOptions gpuL3Opt() {
    PipelineOptions O;
    O.Svm = SvmMode::Eager;
    O.EnableL3Opt = true;
    O.CleanupAfterSvm = false;
    return O;
  }
  static PipelineOptions gpuAll() {
    PipelineOptions O;
    O.Svm = SvmMode::Hybrid;
    O.EnableL3Opt = true;
    O.CleanupAfterSvm = true;
    return O;
  }
};

/// Statistics from one pipeline run (also feeds the Figure 6 harness).
struct PipelineStats {
  unsigned TranslationsInserted = 0;
  unsigned TranslationsRemoved = 0;
  unsigned VCallsDevirtualized = 0;
  unsigned VCallsPtsNarrowed = 0;
  unsigned CallsInlined = 0;
  unsigned LoopsStaggered = 0;
  unsigned LoopsUnrolled = 0;
  unsigned AllocasPromoted = 0;
  unsigned TailCallsEliminated = 0;
  unsigned InstructionsRemoved = 0;
  unsigned SoaRewrites = 0;
};

//===--- Individual passes (exposed for unit testing) --------------------===//

/// Eliminates self tail recursion by looping back to the entry.
bool tailRecursionElim(cir::Function &F, PipelineStats &Stats);

/// Lowers every VCall to an inline sequence of symbol tests and direct
/// calls, using class hierarchy analysis (section 3.2).
bool devirtualize(cir::Module &M, PipelineStats &Stats);

/// Inlines all direct calls into \p F (callees must be non-recursive).
bool inlineCalls(cir::Module &M, cir::Function &F, PipelineStats &Stats);

/// Removes unreachable blocks, folds constant branches, merges blocks.
bool simplifyCFG(cir::Function &F, PipelineStats &Stats);

/// Promotes scalar allocas to SSA values (register promotion).
bool mem2reg(cir::Function &F, PipelineStats &Stats);

/// Hoists loads of `const Body` fields to single entry-block loads
/// (the aggressive register promotion of section 4). Kernel-only; skipped
/// when the kernel stores through body-rooted addresses.
bool promoteBodyFields(cir::Function &F, PipelineStats &Stats);

/// Constant folding and algebraic simplification.
bool constantFold(cir::Function &F, PipelineStats &Stats);

/// Dominator-scoped common subexpression elimination of pure instructions.
bool cse(cir::Function &F, PipelineStats &Stats);

/// Deletes pure instructions with no uses.
bool dce(cir::Function &F, PipelineStats &Stats);

/// Hoists loop-invariant pure instructions (incl. pointer translations,
/// the "optimal code motion" placement of section 4.1) to preheaders.
bool licm(cir::Function &F, PipelineStats &Stats);

/// Fully unrolls constant-trip-count innermost loops, bounded by
/// NumRegisters via max-live (section 4).
bool loopUnroll(cir::Function &F, const PipelineOptions &Opts,
                PipelineStats &Stats);

/// The section 4.2 transformation: staggers innermost-loop array traversal
/// per GPU core: j_tmp = (j + global_id / W) % N.
bool l3ContentionOpt(cir::Function &F, PipelineStats &Stats);

/// Inserts SVM pointer translations per \p Mode (sections 3.1 / 4.1).
bool svmLowering(cir::Function &F, SvmMode Mode, PipelineStats &Stats);

/// Builds the hierarchical-reduction kernel (section 3.3) for a Body class
/// with operator()(int) and join(Body&). The generated kernel takes
/// (bodyPtr, scratchPtr, numItems); each work-item runs operator() on its
/// private copy in \p scratch, then the work-group tree-reduces via join,
/// leaving one partial result per group at the group's slot 0.
cir::Function *createReduceKernel(cir::Module &M,
                                  const std::string &ClassName,
                                  DiagnosticEngine &Diags);

//===--- Pipeline ----------------------------------------------------------//

/// Runs the full GPU compilation pipeline on a module whose kernels have
/// been created (kernel$... / kernel_reduce$... functions). Returns false
/// if verification (per-pass under VerifyEachPass, always at the end) or
/// the address-space soundness check fails; every error is reported in
/// \p VerifyError, one per line. Offload-legality failures and race-lint
/// findings are reported through \p Diags (as unsupported-feature and
/// warning diagnostics respectively) and do not fail the pipeline: the
/// runtime reacts to the former by falling back to native CPU execution.
/// \p SoaPlans, when non-null and EnableSoaLayout is set, receives the
/// staging plan of every kernel the SOA rewrite transformed.
bool runPipeline(cir::Module &M, const PipelineOptions &Opts,
                 PipelineStats &Stats, std::string *VerifyError = nullptr,
                 DiagnosticEngine *Diags = nullptr,
                 SoaModulePlans *SoaPlans = nullptr);

} // namespace transforms
} // namespace concord

#endif // CONCORD_TRANSFORMS_PASSES_H
