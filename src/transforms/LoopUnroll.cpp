//===- LoopUnroll.cpp - Full unrolling of small counted loops -------------===//
//
// Section 4: "we perform unrolling and control the unroll-factor by
// restricting max live to the available physical registers". This pass
// fully unrolls innermost constant-trip-count loops of the canonical
// single-body shape, bounded by the register budget via the max-live
// estimate.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "transforms/Passes.h"
#include "transforms/Utils.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

namespace {

struct UnrollShape {
  analysis::InductionInfo II;
  BasicBlock *Body = nullptr;  ///< Single body block.
  BasicBlock *Latch = nullptr; ///< Step block branching to the header.
  int64_t Trip = 0;
};

/// Matches the canonical shape produced by IRGen for `for` loops:
/// preheader -> header(phis, cmp, condbr) -> body -> latch -> header.
bool matchShape(const analysis::Loop &L, UnrollShape *Out) {
  if (L.Latches.size() != 1 || !L.Preheader)
    return false;
  if (!analysis::LoopInfo::analyzeInduction(L, &Out->II))
    return false;
  auto *InitC = dyn_cast<ConstantInt>(Out->II.Init);
  auto *BoundC = dyn_cast<ConstantInt>(Out->II.Bound);
  if (!InitC || !BoundC || Out->II.Step == 0)
    return false;
  // Only strict < comparisons with the phi on the left are handled.
  if (Out->II.Cmp->icmpPred() != ICmpPred::SLT ||
      Out->II.Cmp->operand(0) != Out->II.Phi)
    return false;
  int64_t Init = InitC->sext(), Bound = BoundC->sext();
  if (Out->II.Step < 0)
    return false;
  int64_t Trip = Init >= Bound
                     ? 0
                     : (Bound - Init + Out->II.Step - 1) / Out->II.Step;

  BasicBlock *Latch = L.Latches.front();
  BasicBlock *Body = Out->II.Body;
  // Loop must be exactly {header, body, latch} (or {header, body==latch}).
  if (Body == Latch) {
    if (L.Blocks.size() != 2)
      return false;
  } else {
    if (L.Blocks.size() != 3 || !L.Blocks.count(Body) ||
        !L.Blocks.count(Latch))
      return false;
    Instruction *BT = Body->terminator();
    if (!BT || BT->opcode() != Opcode::Br || BT->block(0) != Latch)
      return false;
  }
  Out->Body = Body;
  Out->Latch = Latch;
  Out->Trip = Trip;
  return true;
}

} // namespace

bool concord::transforms::loopUnroll(Function &F,
                                     const PipelineOptions &Opts,
                                     PipelineStats &Stats) {
  if (F.empty() || !Opts.EnableUnroll)
    return false;
  bool Changed = false;

  // Re-discover loops after each unroll (block structure changes).
  bool FoundOne = true;
  while (FoundOne) {
    FoundOne = false;
    analysis::DominatorTree DT(F);
    analysis::LoopInfo LI(F, DT);
    analysis::Liveness LV(F);

    for (analysis::Loop *L : LI.innermostLoops()) {
      UnrollShape S;
      if (!matchShape(*L, &S))
        continue;
      if (S.Trip < 0 || uint64_t(S.Trip) > Opts.UnrollMaxTrip)
        continue;
      size_t LoopInstrs = 0;
      for (BasicBlock *BB : L->Blocks)
        LoopInstrs += BB->size();
      if (LoopInstrs * uint64_t(S.Trip) > 256)
        continue;
      // Register-budget bound (section 4): unrolling multiplies the number
      // of simultaneously live values in the body.
      if (LV.maxLive() * uint64_t(S.Trip) > Opts.NumRegisters && S.Trip > 1)
        continue;

      BasicBlock *Header = L->Header;
      BasicBlock *Pre = L->Preheader;
      BasicBlock *Exit = S.II.Exit;
      Module &M = *F.parent();

      // Current value of each header phi entering iteration k.
      std::vector<Instruction *> Phis = Header->phis();
      std::map<Instruction *, Value *> Cur;
      std::map<Instruction *, Value *> FromLatch;
      for (Instruction *Phi : Phis) {
        for (unsigned K = 0; K < Phi->numBlocks(); ++K) {
          if (Phi->incomingBlock(K) == Pre)
            Cur[Phi] = Phi->incomingValue(K);
          else if (Phi->incomingBlock(K) == S.Latch)
            FromLatch[Phi] = Phi->incomingValue(K);
        }
        if (!Cur.count(Phi) || !FromLatch.count(Phi))
          return Changed; // Malformed; bail out entirely.
      }

      // Emit Trip copies of body+latch into a straight-line chain.
      BasicBlock *ChainEnd = Pre;
      for (int64_t K = 0; K < S.Trip; ++K) {
        BasicBlock *Iter = F.createBlockAfter(
            ChainEnd, Header->name() + ".unroll" + std::to_string(K));
        std::map<Value *, Value *> VMap;
        for (Instruction *Phi : Phis)
          VMap[Phi] = Cur[Phi];
        auto CloneBlockInto = [&](BasicBlock *Src) {
          for (Instruction *I : *Src) {
            if (I->isPhi() || I->isTerminator())
              continue;
            auto C = cloneInstruction(I, VMap, {});
            VMap[I] = Iter->append(std::move(C));
          }
        };
        CloneBlockInto(S.Body);
        if (S.Latch != S.Body)
          CloneBlockInto(S.Latch);
        // Terminator: fall through to the next iteration (wired below).
        auto Br = std::make_unique<Instruction>(Opcode::Br,
                                                M.types().voidTy());
        Br->addBlock(Exit); // Placeholder; fixed when the next block exists.
        Iter->append(std::move(Br));

        // Advance the loop-carried values.
        for (Instruction *Phi : Phis) {
          Value *Next = FromLatch[Phi];
          auto It = VMap.find(Next);
          Cur[Phi] = It != VMap.end() ? It->second : Next;
        }
        // Wire the previous block to this one.
        Instruction *PrevTerm = ChainEnd->terminator();
        for (unsigned Blk = 0; Blk < PrevTerm->numBlocks(); ++Blk)
          if (PrevTerm->block(Blk) == Header ||
              (ChainEnd != Pre && PrevTerm->block(Blk) == Exit))
            PrevTerm->setBlock(Blk, Iter);
        ChainEnd = Iter;
      }
      if (S.Trip == 0) {
        Instruction *PreTerm = Pre->terminator();
        for (unsigned Blk = 0; Blk < PreTerm->numBlocks(); ++Blk)
          if (PreTerm->block(Blk) == Header)
            PreTerm->setBlock(Blk, Exit);
      }

      // Exit phis that came from the header now come from the chain end.
      for (Instruction *Phi : Exit->phis())
        for (unsigned K = 0; K < Phi->numBlocks(); ++K)
          if (Phi->incomingBlock(K) == Header)
            Phi->setBlock(K, ChainEnd);

      // Values of the header phis after the final iteration flow to any
      // outside users.
      for (Instruction *Phi : Phis)
        F.replaceAllUsesWith(Phi, Cur[Phi]);

      // Delete the loop blocks (now unreachable).
      PipelineStats Tmp;
      simplifyCFG(F, Tmp);
      Stats.InstructionsRemoved += Tmp.InstructionsRemoved;

      ++Stats.LoopsUnrolled;
      Changed = true;
      FoundOne = true;
      break;
    }
  }
  return Changed;
}
