//===- ScalarOpts.cpp - SimplifyCFG, Mem2Reg, ConstFold, CSE, DCE, LICM ---===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "cir/IRBuilder.h"
#include "transforms/Passes.h"
#include "transforms/Utils.h"

#include <bit>
#include <cmath>
#include <set>

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

//===----------------------------------------------------------------------===//
// SimplifyCFG
//===----------------------------------------------------------------------===//

/// Drops phi-incoming entries from \p BB for edges arriving from \p Pred.
static void removePhiIncoming(BasicBlock *BB, BasicBlock *Pred) {
  for (Instruction *Phi : BB->phis()) {
    for (unsigned K = 0; K < Phi->numBlocks();) {
      if (Phi->incomingBlock(K) == Pred)
        Phi->removeIncoming(K);
      else
        ++K;
    }
  }
}

/// Replaces single-entry phis with their value.
static bool foldTrivialPhis(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    for (size_t Idx = 0; Idx < BB->size();) {
      Instruction *I = BB->instr(Idx);
      if (!I->isPhi())
        break;
      bool AllSame = I->numOperands() >= 1;
      for (unsigned K = 1; K < I->numOperands(); ++K)
        if (I->operand(K) != I->operand(0) && I->operand(K) != I)
          AllSame = false;
      if (AllSame && I->numOperands() >= 1 && I->operand(0) != I) {
        F.replaceAllUsesWith(I, I->operand(0));
        BB->erase(Idx);
        Changed = true;
        continue;
      }
      ++Idx;
    }
  }
  return Changed;
}

bool concord::transforms::simplifyCFG(Function &F, PipelineStats &Stats) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // 1. Fold constant conditional branches.
    for (BasicBlock *BB : F) {
      Instruction *T = BB->terminator();
      if (!T || T->opcode() != Opcode::CondBr)
        continue;
      auto *C = dyn_cast<ConstantInt>(T->operand(0));
      if (!C)
        continue;
      BasicBlock *Taken = C->zext() ? T->block(0) : T->block(1);
      BasicBlock *Dead = C->zext() ? T->block(1) : T->block(0);
      if (Dead != Taken)
        removePhiIncoming(Dead, BB);
      size_t TIdx = BB->indexOf(T);
      BB->erase(TIdx);
      auto Br = std::make_unique<Instruction>(
          Opcode::Br, F.parent()->types().voidTy());
      Br->addBlock(Taken);
      BB->append(std::move(Br));
      Changed = true;
      ++Stats.InstructionsRemoved;
    }

    // 2. Remove unreachable blocks.
    std::set<BasicBlock *> Reachable;
    std::vector<BasicBlock *> Work{F.entry()};
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!Reachable.insert(BB).second)
        continue;
      for (BasicBlock *S : BB->successors())
        Work.push_back(S);
    }
    std::vector<BasicBlock *> ToErase;
    for (BasicBlock *BB : F)
      if (!Reachable.count(BB))
        ToErase.push_back(BB);
    for (BasicBlock *BB : ToErase) {
      for (BasicBlock *S : BB->successors())
        if (Reachable.count(S))
          removePhiIncoming(S, BB);
      F.eraseBlock(BB);
      Changed = true;
    }

    // 3. Merge single-pred / single-succ straight-line pairs.
    auto Preds = analysis::computePredecessors(F);
    for (BasicBlock *A : F) {
      Instruction *T = A->terminator();
      if (!T || T->opcode() != Opcode::Br)
        continue;
      BasicBlock *B = T->block(0);
      if (B == A || B == F.entry())
        continue;
      if (Preds[B].size() != 1 || !B->phis().empty())
        continue;
      // Splice B into A.
      A->erase(A->indexOf(T));
      while (!B->empty()) {
        std::unique_ptr<Instruction> I = B->take(0);
        A->append(std::move(I));
      }
      // B's former successors' phis now come from A.
      for (BasicBlock *S : A->successors())
        for (Instruction *Phi : S->phis())
          for (unsigned K = 0; K < Phi->numBlocks(); ++K)
            if (Phi->incomingBlock(K) == B)
              Phi->setBlock(K, A);
      F.eraseBlock(B);
      Changed = true;
      break; // Preds map is stale; restart.
    }

    Changed |= foldTrivialPhis(F);
    EverChanged |= Changed;
  }
  return EverChanged;
}

//===----------------------------------------------------------------------===//
// Mem2Reg
//===----------------------------------------------------------------------===//

namespace {

struct PromotableAlloca {
  Instruction *Alloca;
  std::set<BasicBlock *> DefBlocks;
};

} // namespace

bool concord::transforms::mem2reg(Function &F, PipelineStats &Stats) {
  // Find promotable allocas: scalar, used only as load/store address.
  std::vector<PromotableAlloca> Allocas;
  std::map<Instruction *, size_t> AllocaIndex;
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      if (I->opcode() != Opcode::Alloca || !I->auxType()->isScalar())
        continue;
      bool Promotable = true;
      for (BasicBlock *UB : F) {
        for (Instruction *U : *UB) {
          for (unsigned Op = 0; Op < U->numOperands(); ++Op) {
            if (U->operand(Op) != I)
              continue;
            bool OK = (U->opcode() == Opcode::Load && Op == 0) ||
                      (U->opcode() == Opcode::Store && Op == 1);
            if (!OK)
              Promotable = false;
          }
        }
      }
      if (!Promotable)
        continue;
      AllocaIndex[I] = Allocas.size();
      Allocas.push_back({I, {}});
    }
  }
  if (Allocas.empty())
    return false;

  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->opcode() == Opcode::Store)
        if (auto *A = dyn_cast<Instruction>(I->operand(1)))
          if (AllocaIndex.count(A))
            Allocas[AllocaIndex[A]].DefBlocks.insert(BB);

  analysis::DominatorTree DT(F);

  // Phi insertion at iterated dominance frontiers.
  Module &M = *F.parent();
  std::map<Instruction *, size_t> PhiForAlloca; // phi -> alloca index.
  for (size_t AI = 0; AI < Allocas.size(); ++AI) {
    std::set<BasicBlock *> HasPhi;
    std::vector<BasicBlock *> Work(Allocas[AI].DefBlocks.begin(),
                                   Allocas[AI].DefBlocks.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *DF : DT.dominanceFrontier(BB)) {
        if (!HasPhi.insert(DF).second)
          continue;
        auto Phi = std::make_unique<Instruction>(
            Opcode::Phi, Allocas[AI].Alloca->auxType());
        Phi->setName(Allocas[AI].Alloca->name() + ".phi");
        Instruction *P = DF->insertAt(0, std::move(Phi));
        PhiForAlloca[P] = AI;
        Work.push_back(DF);
      }
    }
  }

  // Renaming via DFS over the dominator tree.
  std::map<BasicBlock *, std::vector<BasicBlock *>> DomChildren;
  for (BasicBlock *BB : DT.order())
    if (BasicBlock *ID = DT.idom(BB))
      DomChildren[ID].push_back(BB);

  auto ZeroOf = [&](Type *T) -> Value * {
    if (T->isFloat())
      return M.constFloat(0.0f);
    if (T->isPointer())
      return M.nullPtr(cast<PointerType>(T));
    return M.constInt(T, 0);
  };

  struct Frame {
    BasicBlock *BB;
    std::vector<Value *> Incoming;
  };
  std::vector<Frame> Stack;
  {
    std::vector<Value *> Init(Allocas.size(), nullptr);
    Stack.push_back({F.entry(), std::move(Init)});
  }
  std::set<BasicBlock *> Visited;

  while (!Stack.empty()) {
    Frame Fr = std::move(Stack.back());
    Stack.pop_back();
    if (!Visited.insert(Fr.BB).second)
      continue;
    std::vector<Value *> Cur = Fr.Incoming;

    for (size_t Idx = 0; Idx < Fr.BB->size();) {
      Instruction *I = Fr.BB->instr(Idx);
      if (I->isPhi() && PhiForAlloca.count(I)) {
        Cur[PhiForAlloca[I]] = I;
        ++Idx;
        continue;
      }
      if (I->opcode() == Opcode::Load) {
        if (auto *A = dyn_cast<Instruction>(I->operand(0))) {
          auto It = AllocaIndex.find(A);
          if (It != AllocaIndex.end()) {
            Value *V = Cur[It->second];
            if (!V)
              V = ZeroOf(A->auxType());
            F.replaceAllUsesWith(I, V);
            // Phi operands elsewhere may also reference this load.
            Fr.BB->erase(Idx);
            continue;
          }
        }
      }
      if (I->opcode() == Opcode::Store) {
        if (auto *A = dyn_cast<Instruction>(I->operand(1))) {
          auto It = AllocaIndex.find(A);
          if (It != AllocaIndex.end()) {
            Cur[It->second] = I->operand(0);
            Fr.BB->erase(Idx);
            continue;
          }
        }
      }
      ++Idx;
    }

    // Feed successor phis.
    for (BasicBlock *S : Fr.BB->successors()) {
      for (Instruction *Phi : S->phis()) {
        auto It = PhiForAlloca.find(Phi);
        if (It == PhiForAlloca.end())
          continue;
        Value *V = Cur[It->second];
        if (!V)
          V = ZeroOf(Allocas[It->second].Alloca->auxType());
        Phi->addIncoming(V, Fr.BB);
      }
    }

    for (BasicBlock *Child : DomChildren[Fr.BB])
      Stack.push_back({Child, Cur});
  }

  // Remove the allocas themselves.
  for (auto &PA : Allocas) {
    BasicBlock *BB = PA.Alloca->parent();
    BB->erase(BB->indexOf(PA.Alloca));
    ++Stats.AllocasPromoted;
  }

  // Phis in unreached blocks or with missing predecessors are cleaned by
  // simplifyCFG; fold the trivial ones now.
  foldTrivialPhis(F);
  return true;
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

static Value *foldInstruction(Module &M, Instruction *I) {
  // Algebraic identities first.
  auto IsZero = [](Value *V) {
    auto *C = dyn_cast<ConstantInt>(V);
    return C && C->zext() == 0;
  };
  auto IsOne = [](Value *V) {
    auto *C = dyn_cast<ConstantInt>(V);
    return C && C->zext() == 1;
  };
  switch (I->opcode()) {
  case Opcode::Add:
    if (IsZero(I->operand(1)))
      return I->operand(0);
    if (IsZero(I->operand(0)))
      return I->operand(1);
    break;
  case Opcode::Sub:
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::LShr:
  case Opcode::Or:
  case Opcode::Xor:
    if (IsZero(I->operand(1)))
      return I->operand(0);
    break;
  case Opcode::Mul:
    if (IsOne(I->operand(1)))
      return I->operand(0);
    if (IsOne(I->operand(0)))
      return I->operand(1);
    if (IsZero(I->operand(0)) || IsZero(I->operand(1)))
      return M.constInt(I->type(), 0);
    break;
  case Opcode::And:
    if (IsZero(I->operand(0)) || IsZero(I->operand(1)))
      return M.constInt(I->type(), 0);
    break;
  case Opcode::Select:
    if (auto *C = dyn_cast<ConstantInt>(I->operand(0)))
      return C->zext() ? I->operand(1) : I->operand(2);
    if (I->operand(1) == I->operand(2))
      return I->operand(1);
    break;
  default:
    break;
  }

  // Full constant evaluation.
  for (Value *Op : I->operands())
    if (!Op->isConstant())
      return nullptr;

  auto CI = [&](unsigned K) { return dyn_cast<ConstantInt>(I->operand(K)); };
  auto CF = [&](unsigned K) { return dyn_cast<ConstantFloat>(I->operand(K)); };

  switch (I->opcode()) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
  case Opcode::SRem: case Opcode::UDiv: case Opcode::URem: case Opcode::And:
  case Opcode::Or: case Opcode::Xor: case Opcode::Shl: case Opcode::AShr:
  case Opcode::LShr: {
    ConstantInt *A = CI(0), *B = CI(1);
    if (!A || !B)
      return nullptr;
    uint64_t X = A->zext(), Y = B->zext();
    int64_t SX = A->sext(), SY = B->sext();
    unsigned Bits = unsigned(I->type()->sizeInBytes()) * 8;
    uint64_t R = 0;
    switch (I->opcode()) {
    case Opcode::Add: R = X + Y; break;
    case Opcode::Sub: R = X - Y; break;
    case Opcode::Mul: R = X * Y; break;
    case Opcode::SDiv:
      if (SY == 0)
        return nullptr;
      R = uint64_t(SX / SY);
      break;
    case Opcode::SRem:
      if (SY == 0)
        return nullptr;
      R = uint64_t(SX % SY);
      break;
    case Opcode::UDiv:
      if (Y == 0)
        return nullptr;
      R = X / Y;
      break;
    case Opcode::URem:
      if (Y == 0)
        return nullptr;
      R = X % Y;
      break;
    case Opcode::And: R = X & Y; break;
    case Opcode::Or: R = X | Y; break;
    case Opcode::Xor: R = X ^ Y; break;
    case Opcode::Shl: R = Y >= Bits ? 0 : X << Y; break;
    case Opcode::LShr: R = Y >= Bits ? 0 : X >> Y; break;
    case Opcode::AShr: R = Y >= 63 ? uint64_t(SX < 0 ? -1 : 0)
                                   : uint64_t(SX >> SY); break;
    default: return nullptr;
    }
    return M.constInt(I->type(), R);
  }
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv: {
    ConstantFloat *A = CF(0), *B = CF(1);
    if (!A || !B)
      return nullptr;
    float X = A->value(), Y = B->value(), R = 0;
    switch (I->opcode()) {
    case Opcode::FAdd: R = X + Y; break;
    case Opcode::FSub: R = X - Y; break;
    case Opcode::FMul: R = X * Y; break;
    case Opcode::FDiv: R = X / Y; break;
    default: return nullptr;
    }
    return M.constFloat(R);
  }
  case Opcode::Neg:
    if (ConstantInt *A = CI(0))
      return M.constInt(I->type(), uint64_t(-A->sext()));
    return nullptr;
  case Opcode::FNeg:
    if (ConstantFloat *A = CF(0))
      return M.constFloat(-A->value());
    return nullptr;
  case Opcode::Not:
    if (ConstantInt *A = CI(0))
      return M.constInt(I->type(), A->zext() ? 0 : 1);
    return nullptr;
  case Opcode::ICmp: {
    ConstantInt *A = CI(0), *B = CI(1);
    if (!A || !B)
      return nullptr;
    bool R = false;
    switch (I->icmpPred()) {
    case ICmpPred::EQ: R = A->zext() == B->zext(); break;
    case ICmpPred::NE: R = A->zext() != B->zext(); break;
    case ICmpPred::SLT: R = A->sext() < B->sext(); break;
    case ICmpPred::SLE: R = A->sext() <= B->sext(); break;
    case ICmpPred::SGT: R = A->sext() > B->sext(); break;
    case ICmpPred::SGE: R = A->sext() >= B->sext(); break;
    case ICmpPred::ULT: R = A->zext() < B->zext(); break;
    case ICmpPred::ULE: R = A->zext() <= B->zext(); break;
    case ICmpPred::UGT: R = A->zext() > B->zext(); break;
    case ICmpPred::UGE: R = A->zext() >= B->zext(); break;
    }
    return M.constBool(R);
  }
  case Opcode::FCmp: {
    ConstantFloat *A = CF(0), *B = CF(1);
    if (!A || !B)
      return nullptr;
    bool R = false;
    switch (I->fcmpPred()) {
    case FCmpPred::OEQ: R = A->value() == B->value(); break;
    case FCmpPred::ONE: R = A->value() != B->value(); break;
    case FCmpPred::OLT: R = A->value() < B->value(); break;
    case FCmpPred::OLE: R = A->value() <= B->value(); break;
    case FCmpPred::OGT: R = A->value() > B->value(); break;
    case FCmpPred::OGE: R = A->value() >= B->value(); break;
    }
    return M.constBool(R);
  }
  case Opcode::Cast: {
    if (ConstantInt *A = CI(0)) {
      switch (I->castKind()) {
      case CastKind::Trunc:
      case CastKind::ZExt:
      case CastKind::BitCast:
      case CastKind::PtrToInt:
      case CastKind::IntToPtr:
        if (I->type()->isInteger())
          return M.constInt(I->type(), A->zext());
        return nullptr;
      case CastKind::SExt:
        return M.constInt(I->type(), uint64_t(A->sext()));
      case CastKind::SIToFP:
        return M.constFloat(float(A->sext()));
      case CastKind::UIToFP:
        return M.constFloat(float(A->zext()));
      default:
        return nullptr;
      }
    }
    if (ConstantFloat *A = CF(0)) {
      switch (I->castKind()) {
      case CastKind::FPToSI:
        return M.constInt(I->type(), uint64_t(int64_t(A->value())));
      case CastKind::FPToUI:
        return M.constInt(I->type(), uint64_t(A->value()));
      default:
        return nullptr;
      }
    }
    return nullptr;
  }
  case Opcode::Intrinsic: {
    // Fold single-float intrinsics.
    if (I->numOperands() == 1) {
      ConstantFloat *A = CF(0);
      if (!A)
        return nullptr;
      float X = A->value();
      switch (I->intrinsicId()) {
      case IntrinsicId::Sqrt: return M.constFloat(std::sqrt(X));
      case IntrinsicId::Fabs: return M.constFloat(std::fabs(X));
      case IntrinsicId::Floor: return M.constFloat(std::floor(X));
      default: return nullptr;
      }
    }
    return nullptr;
  }
  default:
    return nullptr;
  }
}

bool concord::transforms::constantFold(Function &F, PipelineStats &Stats) {
  Module &M = *F.parent();
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      for (size_t Idx = 0; Idx < BB->size();) {
        Instruction *I = BB->instr(Idx);
        if (!I->isPure() && I->opcode() != Opcode::Select) {
          ++Idx;
          continue;
        }
        Value *R = foldInstruction(M, I);
        if (R && R != I) {
          F.replaceAllUsesWith(I, R);
          BB->erase(Idx);
          Changed = true;
          ++Stats.InstructionsRemoved;
          continue;
        }
        ++Idx;
      }
    }
    EverChanged |= Changed;
  }
  return EverChanged;
}

//===----------------------------------------------------------------------===//
// CSE
//===----------------------------------------------------------------------===//

namespace {
struct CseKey {
  Opcode Op;
  uint64_t Attr;
  Type *Ty;
  std::vector<Value *> Ops;
  bool operator<(const CseKey &O) const {
    if (Op != O.Op)
      return Op < O.Op;
    if (Attr != O.Attr)
      return Attr < O.Attr;
    if (Ty != O.Ty)
      return Ty < O.Ty;
    return Ops < O.Ops;
  }
};
} // namespace

static void cseBlock(Function &F, BasicBlock *BB,
                     std::map<CseKey, Instruction *> Available,
                     const std::map<BasicBlock *, std::vector<BasicBlock *>>
                         &DomChildren,
                     PipelineStats &Stats, bool &Changed) {
  for (size_t Idx = 0; Idx < BB->size();) {
    Instruction *I = BB->instr(Idx);
    if (!I->isPure() || I->isPhi()) {
      ++Idx;
      continue;
    }
    // Device queries without operands are uniform per work-item: CSE-able.
    CseKey Key{I->opcode(), I->attr(), I->type(), I->operands()};
    auto It = Available.find(Key);
    if (It != Available.end()) {
      F.replaceAllUsesWith(I, It->second);
      BB->erase(Idx);
      Changed = true;
      ++Stats.InstructionsRemoved;
      continue;
    }
    Available.emplace(std::move(Key), I);
    ++Idx;
  }
  auto It = DomChildren.find(BB);
  if (It == DomChildren.end())
    return;
  for (BasicBlock *Child : It->second)
    cseBlock(F, Child, Available, DomChildren, Stats, Changed);
}

bool concord::transforms::cse(Function &F, PipelineStats &Stats) {
  analysis::DominatorTree DT(F);
  std::map<BasicBlock *, std::vector<BasicBlock *>> DomChildren;
  for (BasicBlock *BB : DT.order())
    if (BasicBlock *ID = DT.idom(BB))
      DomChildren[ID].push_back(BB);
  bool Changed = false;
  cseBlock(F, F.entry(), {}, DomChildren, Stats, Changed);
  return Changed;
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

bool concord::transforms::dce(Function &F, PipelineStats &Stats) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    auto Uses = countUses(F);
    for (BasicBlock *BB : F) {
      for (size_t Idx = BB->size(); Idx-- > 0;) {
        Instruction *I = BB->instr(Idx);
        if (I->isTerminator() || I->type()->isVoid())
          continue;
        bool Removable = I->isPure() || I->isPhi() ||
                         I->opcode() == Opcode::Alloca;
        if (!Removable)
          continue;
        unsigned N = Uses.count(I) ? Uses[I] : 0;
        // A phi used only by itself is dead.
        if (I->isPhi() && N > 0) {
          unsigned SelfUses = 0;
          for (Value *Op : I->operands())
            if (Op == I)
              ++SelfUses;
          if (SelfUses == N)
            N = 0;
        }
        if (N == 0) {
          if (I->isAddressTranslate())
            ++Stats.TranslationsRemoved;
          BB->erase(Idx);
          Changed = true;
          ++Stats.InstructionsRemoved;
        }
      }
    }
    EverChanged |= Changed;
  }
  return EverChanged;
}

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

bool concord::transforms::licm(Function &F, PipelineStats &Stats) {
  analysis::DominatorTree DT(F);
  analysis::LoopInfo LI(F, DT);
  bool EverChanged = false;

  for (const auto &L : LI.loops()) {
    if (!L->Preheader)
      continue;
    Instruction *PreTerm = L->Preheader->terminator();
    if (!PreTerm)
      continue;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : L->Blocks) {
        for (size_t Idx = 0; Idx < BB->size();) {
          Instruction *I = BB->instr(Idx);
          bool Hoistable = I->isPure() && !I->isPhi() &&
                           I->opcode() != Opcode::GlobalId &&
                           I->opcode() != Opcode::LocalId &&
                           I->numBlocks() == 0;
          // All operands must be defined outside the loop.
          if (Hoistable) {
            for (Value *Op : I->operands()) {
              if (auto *OpI = dyn_cast<Instruction>(Op))
                if (L->contains(OpI->parent()))
                  Hoistable = false;
            }
          }
          if (!Hoistable) {
            ++Idx;
            continue;
          }
          // Move to the preheader, before its terminator.
          std::unique_ptr<Instruction> Taken = BB->take(Idx);
          Instruction *Raw = Taken.get();
          size_t TermIdx = L->Preheader->indexOf(L->Preheader->terminator());
          L->Preheader->insertAt(TermIdx, std::move(Taken));
          (void)Raw;
          Changed = true;
          EverChanged = true;
        }
      }
    }
  }
  (void)Stats;
  return EverChanged;
}
