//===- ReduceKernel.cpp - Hierarchical reduction lowering (section 3.3) ---===//
//
// Generates the wrapper kernel for parallel_reduce_hetero: every work-item
// gets a private copy of the Body object in the reduction scratch surface,
// runs operator() on it, and the work-group tree-reduces the copies with
// join() using barriers, leaving one partial Body per work-group at the
// group's slot 0. The runtime then joins the per-group partials
// sequentially on the CPU (the paper likewise hands the runtime the
// sequential join for the final combine).
//
// TBB-style precondition: a freshly copied Body must act as a reduction
// identity, since inactive lanes (gid >= n) contribute untouched copies.
//
//===----------------------------------------------------------------------===//

#include "cir/IRBuilder.h"
#include "frontend/Compile.h"
#include "transforms/Passes.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

cir::Function *
concord::transforms::createReduceKernel(Module &M,
                                        const std::string &ClassName,
                                        DiagnosticEngine &Diags) {
  ClassType *Body = M.types().findClass(ClassName);
  if (!Body) {
    Diags.error(SourceLoc(), "reduction body class '" + ClassName +
                                 "' not found in kernel source");
    return nullptr;
  }
  Function *Op = frontend::findMethod(M, ClassName, "operator()", 1);
  Function *Join = frontend::findMethod(M, ClassName, "join", 1);
  if (!Op || !Join) {
    Diags.error(SourceLoc(), "class '" + ClassName +
                                 "' needs operator()(int) and join(" +
                                 ClassName + "&) for parallel_reduce");
    return nullptr;
  }

  std::string Name = "kernel_reduce$" + ClassName;
  if (Function *Existing = M.findFunction(Name))
    return Existing;

  TypeContext &T = M.types();
  // Args: body CPU address, scratch CPU address, item count.
  FunctionType *KTy = T.functionTy(
      T.voidTy(), {T.uint64Ty(), T.uint64Ty(), T.uint64Ty()});
  Function *K = M.createFunction(Name, KTy);
  K->setKernel(true);

  BasicBlock *Entry = K->createBlock("entry");
  BasicBlock *Run = K->createBlock("run");
  BasicBlock *Ran = K->createBlock("ran");
  BasicBlock *LoopHead = K->createBlock("tree.head");
  BasicBlock *LoopBody = K->createBlock("tree.body");
  BasicBlock *DoJoin = K->createBlock("tree.join");
  BasicBlock *JoinDone = K->createBlock("tree.next");
  BasicBlock *Done = K->createBlock("done");

  IRBuilder B(M);
  uint64_t BodySize = Body->classSize();
  PointerType *BodyPtrTy = T.pointerTo(Body);

  B.setInsertAtEnd(Entry);
  Instruction *Lid = B.createDeviceQuery(Opcode::LocalId, "lid");
  Instruction *Gid = B.createDeviceQuery(Opcode::GlobalId, "gid");
  Instruction *Gsz = B.createDeviceQuery(Opcode::GroupSize, "gsz");
  Instruction *Grp = B.createDeviceQuery(Opcode::GroupId, "grp");
  Value *BodyPtr = B.createCast(CastKind::IntToPtr, K->arg(0), BodyPtrTy,
                                "body");
  Value *Scratch = B.createCast(CastKind::IntToPtr, K->arg(1), BodyPtrTy,
                                "scratch");
  Value *GrpBase = B.createBinOp(Opcode::Mul, Grp, Gsz, "grp.base");
  Value *SlotIdx32 = B.createBinOp(Opcode::Add, GrpBase, Lid, "slot");
  Value *SlotIdx = B.createCast(CastKind::SExt, SlotIdx32, T.int64Ty());
  Value *MySlot = B.createIndexAddr(Scratch, SlotIdx, "my.slot");
  B.createMemcpy(MySlot, BodyPtr, BodySize);
  Value *Gid64 = B.createCast(CastKind::SExt, Gid, T.int64Ty());
  Value *GidU = B.createCast(CastKind::BitCast, Gid64, T.uint64Ty());
  Value *InBounds = B.createICmp(ICmpPred::ULT, GidU, K->arg(2), "in");
  B.createCondBr(InBounds, Run, Ran);

  B.setInsertAtEnd(Run);
  B.createCall(Op, {MySlot, Gid});
  B.createBr(Ran);

  B.setInsertAtEnd(Ran);
  B.createBarrier();
  Value *SInit = B.createBinOp(Opcode::AShr, Gsz, M.constI32(1), "s.init");
  B.createBr(LoopHead);

  B.setInsertAtEnd(LoopHead);
  Instruction *S = B.createPhi(T.int32Ty(), "s");
  Value *Cont = B.createICmp(ICmpPred::SGT, S, M.constI32(0));
  B.createCondBr(Cont, LoopBody, Done);

  B.setInsertAtEnd(LoopBody);
  Value *Active = B.createICmp(ICmpPred::SLT, Lid, S, "active");
  B.createCondBr(Active, DoJoin, JoinDone);

  B.setInsertAtEnd(DoJoin);
  Value *S64 = B.createCast(CastKind::SExt, S, T.int64Ty());
  Value *OtherIdx = B.createBinOp(Opcode::Add, SlotIdx, S64, "other.idx");
  Value *Other = B.createIndexAddr(Scratch, OtherIdx, "other");
  B.createCall(Join, {MySlot, Other});
  B.createBr(JoinDone);

  B.setInsertAtEnd(JoinDone);
  B.createBarrier();
  Value *SNext = B.createBinOp(Opcode::AShr, S, M.constI32(1), "s.next");
  B.createBr(LoopHead);

  S->addIncoming(SInit, Ran);
  S->addIncoming(SNext, JoinDone);

  B.setInsertAtEnd(Done);
  B.createRet();
  return K;
}
