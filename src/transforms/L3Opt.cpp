//===- L3Opt.cpp - GPU cache-line contention reduction (section 4.2) ------===//
//
// The integrated GPU's L3 is shared by all EUs and is not banked, so
// simultaneous accesses to the same cache line from different cores
// serialize. When every work-item walks the same array in the same order
// (Figure 5, left), all cores hit the same line at the same time. The
// transformation staggers the starting offset per core:
//
//   int start = i / W;               // W = number of GPU cores
//   for (j = 0; j < N; j++) {
//     j_tmp = (j + start) % N;
//     ... a[j_tmp] ...
//   }
//
// applied to innermost counted loops that read memory at induction-
// dependent addresses.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "transforms/Passes.h"
#include "transforms/Utils.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

/// True when the loop contains a memory access whose address depends on
/// the induction variable.
static bool hasInductionDependentAccess(const analysis::Loop &L,
                                        Instruction *Phi) {
  for (BasicBlock *BB : L.Blocks) {
    for (Instruction *I : *BB) {
      if (I->opcode() == Opcode::Load && dependsOn(I->operand(0), Phi))
        return true;
      if (I->opcode() == Opcode::Store && dependsOn(I->operand(1), Phi))
        return true;
    }
  }
  return false;
}

bool concord::transforms::l3ContentionOpt(Function &F,
                                          PipelineStats &Stats) {
  if (F.empty())
    return false;
  analysis::DominatorTree DT(F);
  analysis::LoopInfo LI(F, DT);
  Module &M = *F.parent();
  TypeContext &T = M.types();
  bool Changed = false;

  for (analysis::Loop *L : LI.innermostLoops()) {
    analysis::InductionInfo II;
    if (!analysis::LoopInfo::analyzeInduction(*L, &II))
      continue;
    // The modulo rotation is only valid for the canonical 0..N step-1 form.
    auto *InitC = dyn_cast<ConstantInt>(II.Init);
    if (!InitC || InitC->zext() != 0 || II.Step != 1)
      continue;
    if (!II.Phi->type()->isInteger() ||
        II.Phi->type() != II.Bound->type())
      continue;
    if (!hasInductionDependentAccess(*L, II.Phi))
      continue;
    if (!L->Preheader || !L->Preheader->terminator())
      continue;
    // The rotation's per-iteration overhead only pays off for small
    // streaming bodies (the Figure 5 pattern) where the shared-line
    // accesses dominate; skip big bodies (e.g. inlined intersection
    // routines) where the add/compare/select would outweigh the saved
    // contention.
    size_t BodyInstrs = 0;
    for (BasicBlock *BB : L->Blocks)
      BodyInstrs += BB->size();
    if (BodyInstrs > 48)
      continue;
    // The rotation needs N in the preheader: the bound must be defined
    // outside the loop in a block dominating the preheader.
    if (auto *BoundI = dyn_cast<Instruction>(II.Bound))
      if (L->contains(BoundI->parent()) ||
          !DT.dominates(BoundI->parent(), L->Preheader))
        continue;

    // Preheader: start = (global_id / W) % N, reduced once so the
    // per-iteration rotation strength-reduces to add/compare/subtract
    // ((j + start) % N == (j + start % N) % N, and j + start%N < 2N).
    BasicBlock *Pre = L->Preheader;
    size_t At = Pre->indexOf(Pre->terminator());
    auto Gid = std::make_unique<Instruction>(Opcode::GlobalId, T.int32Ty());
    Gid->setName("l3.gid");
    Instruction *GidI = Pre->insertAt(At++, std::move(Gid));
    auto W = std::make_unique<Instruction>(Opcode::NumCores, T.int32Ty());
    W->setName("l3.w");
    Instruction *WI = Pre->insertAt(At++, std::move(W));
    auto Div = std::make_unique<Instruction>(Opcode::SDiv, T.int32Ty());
    Div->addOperand(GidI);
    Div->addOperand(WI);
    Div->setName("l3.start");
    Instruction *StartI = Pre->insertAt(At++, std::move(Div));
    Value *Start = StartI;
    if (II.Phi->type() != T.int32Ty()) {
      auto Ext = std::make_unique<Instruction>(Opcode::Cast, II.Phi->type());
      Ext->addOperand(StartI);
      Ext->setAttr(uint64_t(CastKind::SExt));
      Start = Pre->insertAt(At++, std::move(Ext));
    }
    auto Red = std::make_unique<Instruction>(Opcode::SRem, II.Phi->type());
    Red->addOperand(Start);
    Red->addOperand(II.Bound);
    Red->setName("l3.start.red");
    Start = Pre->insertAt(At++, std::move(Red));

    // Body head: t = j + start; j_tmp = t < N ? t : t - N.
    BasicBlock *Body = II.Body;
    size_t BodyAt = 0;
    while (BodyAt < Body->size() && Body->instr(BodyAt)->isPhi())
      ++BodyAt;
    auto Sum = std::make_unique<Instruction>(Opcode::Add, II.Phi->type());
    Sum->addOperand(II.Phi);
    Sum->addOperand(Start);
    Sum->setName("l3.sum");
    Instruction *SumI = Body->insertAt(BodyAt++, std::move(Sum));
    auto InRange = std::make_unique<Instruction>(Opcode::ICmp, T.boolTy());
    InRange->addOperand(SumI);
    InRange->addOperand(II.Bound);
    InRange->setAttr(uint64_t(ICmpPred::SLT));
    InRange->setName("l3.inrange");
    Instruction *InRangeI = Body->insertAt(BodyAt++, std::move(InRange));
    auto Wrapped = std::make_unique<Instruction>(Opcode::Sub, II.Phi->type());
    Wrapped->addOperand(SumI);
    Wrapped->addOperand(II.Bound);
    Wrapped->setName("l3.wrap");
    Instruction *WrappedI = Body->insertAt(BodyAt++, std::move(Wrapped));
    auto Sel = std::make_unique<Instruction>(Opcode::Select, II.Phi->type());
    Sel->addOperand(InRangeI);
    Sel->addOperand(SumI);
    Sel->addOperand(WrappedI);
    Sel->setName("j.tmp");
    Instruction *JTmp = Body->insertAt(BodyAt++, std::move(Sel));

    // Replace uses of j inside blocks dominated by the body (the loop body
    // proper), except the increment, the compare, and j_tmp itself.
    for (BasicBlock *BB : L->Blocks) {
      if (!DT.dominates(Body, BB))
        continue;
      for (Instruction *I : *BB) {
        if (I == II.Next || I == II.Cmp || I == SumI || I == InRangeI ||
            I == WrappedI || I == JTmp)
          continue;
        I->replaceUsesOfWith(II.Phi, JTmp);
      }
    }
    ++Stats.LoopsStaggered;
    Changed = true;
  }
  return Changed;
}
