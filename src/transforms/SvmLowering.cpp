//===- SvmLowering.cpp - Software SVM pointer translation (PTROPT) --------===//
//
// Implements the paper's sections 3.1 and 4.1. Shared pointers hold CPU
// virtual addresses; dereferencing on the GPU requires adding the runtime
// constant svm_const = gpu_base - cpu_base. This pass decides where those
// translations go:
//
//   Eager  - translate at each def; convert back (GpuToCpu) before storing
//            a pointer to memory. This is the naive baseline and wastes
//            work when pointers are copied but never dereferenced.
//   Lazy   - translate immediately before each dereference; wastes work
//            when the same pointer is dereferenced repeatedly (in loops).
//   Hybrid - PTROPT: keep BOTH representations of every pointer. Address
//            computations (field/index arithmetic, phis, selects) are
//            mirrored in GPU space, dereferences use the GPU
//            representation, pointer-valued stores use the CPU one, and
//            the subsequent DCE/CSE/LICM cleanup removes whichever copies
//            are unused and hoists loop-invariant translations.
//
// Pointers that provably derive from allocas (private memory, i.e. the
// stack objects the compiler promotes to private memory per section 4) are
// never translated: private memory is per-work-item and not shared.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "transforms/Passes.h"

#include <map>
#include <set>

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

namespace {

enum class Provenance { Unknown, Private, Shared };

Provenance meet(Provenance A, Provenance B) {
  if (A == Provenance::Unknown)
    return B;
  if (B == Provenance::Unknown)
    return A;
  return A == B ? A : Provenance::Shared;
}

/// True for values whose representation the pass tracks (pointers).
bool isPointerValue(const Value *V) { return V->type()->isPointer(); }

class SvmLoweringPass {
public:
  SvmLoweringPass(Function &F, SvmMode Mode, PipelineStats &Stats)
      : F(F), M(*F.parent()), Mode(Mode), Stats(Stats) {}

  bool run();

private:
  void computeProvenance();
  bool isShared(Value *V) const {
    if (!isPointerValue(V))
      return false;
    auto It = Prov.find(V);
    // Constants (null) and anything unseen default to shared.
    return It == Prov.end() || It->second != Provenance::Private;
  }

  /// GPU representation of \p V, creating the mirror chain on demand.
  Value *gpuRepr(Value *V);

  Instruction *insertAfterDef(Value *V, std::unique_ptr<Instruction> I);

  Function &F;
  Module &M;
  SvmMode Mode;
  PipelineStats &Stats;
  std::map<Value *, Provenance> Prov;
  std::map<Value *, Value *> GpuOf;
};

void SvmLoweringPass::computeProvenance() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      for (Instruction *I : *BB) {
        if (!isPointerValue(I))
          continue;
        Provenance P = Provenance::Unknown;
        switch (I->opcode()) {
        case Opcode::Alloca:
          P = Provenance::Private;
          break;
        case Opcode::Load:
        case Opcode::Call:
        case Opcode::VCall:
          P = Provenance::Shared;
          break;
        case Opcode::Cast:
          if (I->castKind() == CastKind::BitCast &&
              isPointerValue(I->operand(0))) {
            auto It = Prov.find(I->operand(0));
            P = It == Prov.end() ? Provenance::Unknown : It->second;
          } else {
            P = Provenance::Shared; // IntToPtr etc.
          }
          break;
        case Opcode::FieldAddr:
        case Opcode::IndexAddr: {
          auto It = Prov.find(I->operand(0));
          P = It == Prov.end() ? Provenance::Unknown : It->second;
          break;
        }
        case Opcode::Phi:
        case Opcode::Select: {
          unsigned First = I->opcode() == Opcode::Select ? 1 : 0;
          for (unsigned K = First; K < I->numOperands(); ++K) {
            Value *Op = I->operand(K);
            if (Op == I)
              continue;
            if (Op->isConstant()) {
              P = meet(P, Provenance::Shared);
              continue;
            }
            auto It = Prov.find(Op);
            if (It != Prov.end())
              P = meet(P, It->second);
            else if (isa<Argument>(Op))
              P = meet(P, Provenance::Shared);
          }
          break;
        }
        default:
          P = Provenance::Shared;
          break;
        }
        auto It = Prov.find(I);
        Provenance Old = It == Prov.end() ? Provenance::Unknown : It->second;
        if (P != Old) {
          Prov[I] = P;
          Changed = true;
        }
      }
    }
  }
}

Instruction *SvmLoweringPass::insertAfterDef(Value *V,
                                             std::unique_ptr<Instruction> I) {
  if (auto *DefI = dyn_cast<Instruction>(V)) {
    BasicBlock *BB = DefI->parent();
    size_t Idx = BB->indexOf(DefI);
    if (DefI->isPhi()) {
      // Keep the phi cluster intact: insert after the last phi.
      while (Idx < BB->size() && BB->instr(Idx)->isPhi())
        ++Idx;
      return BB->insertAt(Idx, std::move(I));
    }
    return BB->insertAt(Idx + 1, std::move(I));
  }
  // Arguments and constants: at the top of the entry block.
  return F.entry()->insertAt(0, std::move(I));
}

Value *SvmLoweringPass::gpuRepr(Value *V) {
  auto It = GpuOf.find(V);
  if (It != GpuOf.end())
    return It->second;

  TypeContext &T = M.types();
  auto *I = dyn_cast<Instruction>(V);

  // Mirror address arithmetic so derived pointers stay translated (the
  // "both representations" strategy of section 4.1).
  if (I && (I->opcode() == Opcode::FieldAddr ||
            I->opcode() == Opcode::IndexAddr ||
            (I->opcode() == Opcode::Cast &&
             I->castKind() == CastKind::BitCast &&
             isPointerValue(I->operand(0))))) {
    auto Mirror = std::make_unique<Instruction>(I->opcode(), I->type());
    Mirror->setAttr(I->attr());
    Mirror->setName(I->name().empty() ? "g" : I->name() + ".g");
    Instruction *MirrorI = insertAfterDef(V, std::move(Mirror));
    GpuOf[V] = MirrorI; // Break cycles before recursing.
    MirrorI->addOperand(gpuRepr(I->operand(0)));
    for (unsigned K = 1; K < I->numOperands(); ++K)
      MirrorI->addOperand(I->operand(K));
    return MirrorI;
  }
  if (I && I->opcode() == Opcode::Phi) {
    auto Mirror = std::make_unique<Instruction>(Opcode::Phi, I->type());
    Mirror->setName("phi.g");
    Instruction *MirrorI = I->parent()->insertAt(0, std::move(Mirror));
    GpuOf[V] = MirrorI;
    for (unsigned K = 0; K < I->numOperands(); ++K) {
      Value *In = I->incomingValue(K);
      Value *GIn = In == I ? MirrorI
                   : isShared(In) || In->isConstant() ? gpuRepr(In)
                                                      : In;
      MirrorI->addIncoming(GIn, I->incomingBlock(K));
    }
    return MirrorI;
  }
  if (I && I->opcode() == Opcode::Select) {
    auto Mirror = std::make_unique<Instruction>(Opcode::Select, I->type());
    Mirror->setName("sel.g");
    Instruction *MirrorI = insertAfterDef(V, std::move(Mirror));
    GpuOf[V] = MirrorI;
    MirrorI->addOperand(I->operand(0));
    MirrorI->addOperand(gpuRepr(I->operand(1)));
    MirrorI->addOperand(gpuRepr(I->operand(2)));
    return MirrorI;
  }

  // Root: a real translation instruction.
  auto Xlate = std::make_unique<Instruction>(Opcode::CpuToGpu, V->type());
  Xlate->addOperand(V);
  Xlate->setName("gpu");
  Instruction *XI = insertAfterDef(V, std::move(Xlate));
  ++Stats.TranslationsInserted;
  GpuOf[V] = XI;
  (void)T;
  return XI;
}

bool SvmLoweringPass::run() {
  if (F.empty() || Mode == SvmMode::None)
    return false;
  computeProvenance();

  bool Changed = false;
  TypeContext &T = M.types();

  if (Mode == SvmMode::Lazy) {
    // Translate right before every dereference of a shared pointer.
    for (BasicBlock *BB : F) {
      for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
        Instruction *I = BB->instr(Idx);
        auto LazyXlate = [&](unsigned OpIdx) {
          Value *Addr = I->operand(OpIdx);
          if (!isShared(Addr))
            return;
          auto X = std::make_unique<Instruction>(Opcode::CpuToGpu,
                                                 Addr->type());
          X->addOperand(Addr);
          Instruction *XI = BB->insertAt(Idx, std::move(X));
          ++Idx;
          I->setOperand(OpIdx, XI);
          ++Stats.TranslationsInserted;
          Changed = true;
        };
        switch (I->opcode()) {
        case Opcode::Load:
          LazyXlate(0);
          break;
        case Opcode::Store:
          LazyXlate(1);
          break;
        case Opcode::Memcpy:
          LazyXlate(0);
          LazyXlate(1);
          break;
        default:
          break;
        }
      }
    }
    return Changed;
  }

  // Eager / Hybrid: collect dereference sites first (the mirror creation
  // below inserts instructions and would invalidate in-place iteration).
  struct Deref {
    Instruction *I;
    unsigned OpIdx;
  };
  std::vector<Deref> Derefs;
  std::vector<Deref> PointerStores; // Store instructions storing a pointer.
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      switch (I->opcode()) {
      case Opcode::Load:
        if (isShared(I->operand(0)))
          Derefs.push_back({I, 0});
        break;
      case Opcode::Store:
        if (isShared(I->operand(1)))
          Derefs.push_back({I, 1});
        if (Mode == SvmMode::Eager && isPointerValue(I->operand(0)) &&
            isShared(I->operand(0)))
          PointerStores.push_back({I, 0});
        break;
      case Opcode::Memcpy:
        if (isShared(I->operand(0)))
          Derefs.push_back({I, 0});
        if (isShared(I->operand(1)))
          Derefs.push_back({I, 1});
        break;
      default:
        break;
      }
    }
  }

  for (Deref &D : Derefs) {
    D.I->setOperand(D.OpIdx, gpuRepr(D.I->operand(D.OpIdx)));
    Changed = true;
  }

  // Eager mode converts stored pointers back to the CPU representation,
  // the "wasted work" pattern of Figure 4 that PTROPT avoids.
  for (Deref &D : PointerStores) {
    Value *V = D.I->operand(D.OpIdx);
    Value *G = gpuRepr(V);
    auto Back = std::make_unique<Instruction>(Opcode::GpuToCpu, V->type());
    Back->addOperand(G);
    BasicBlock *BB = D.I->parent();
    Instruction *BackI = BB->insertAt(BB->indexOf(D.I), std::move(Back));
    D.I->setOperand(D.OpIdx, BackI);
    ++Stats.TranslationsInserted;
    Changed = true;
  }
  (void)T;
  return Changed;
}

} // namespace

bool concord::transforms::svmLowering(Function &F, SvmMode Mode,
                                      PipelineStats &Stats) {
  return SvmLoweringPass(F, Mode, Stats).run();
}
