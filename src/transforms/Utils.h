//===- Utils.h - Shared transform utilities ---------------------*- C++ -*-===//

#ifndef CONCORD_TRANSFORMS_UTILS_H
#define CONCORD_TRANSFORMS_UTILS_H

#include "cir/Function.h"
#include <map>
#include <memory>

namespace concord {
namespace transforms {

/// Clones \p I with operands/blocks remapped through \p ValueMap /
/// \p BlockMap (identity when a key is absent).
std::unique_ptr<cir::Instruction>
cloneInstruction(const cir::Instruction *I,
                 const std::map<cir::Value *, cir::Value *> &ValueMap,
                 const std::map<cir::BasicBlock *, cir::BasicBlock *> &BlockMap);

/// Counts uses of every instruction/argument in \p F.
std::map<cir::Value *, unsigned> countUses(cir::Function &F);

/// True when \p V transitively depends on \p Root through pure
/// instructions (used by L3OPT to find induction-dependent addresses).
bool dependsOn(cir::Value *V, cir::Value *Root, unsigned Depth = 16);

} // namespace transforms
} // namespace concord

#endif // CONCORD_TRANSFORMS_UTILS_H
