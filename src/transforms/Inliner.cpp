//===- Inliner.cpp - Exhaustive inlining of direct calls ------------------===//
//
// Concord kernels fully inline their (non-recursive) call trees: GPU
// hardware has no call stack worth speaking of, and full inlining makes
// pointer provenance visible to the SVM lowering pass, which must
// distinguish private (stack-promoted) pointers from shared ones.
//
//===----------------------------------------------------------------------===//

#include "transforms/Passes.h"
#include "transforms/Utils.h"

using namespace concord;
using namespace concord::cir;
using namespace concord::transforms;

/// Inlines the call at (BB, CallIdx) in F. Returns false when the site is
/// not inlinable (no body / self call).
static bool inlineOneCall(Module &M, Function &F, BasicBlock *BB,
                          size_t CallIdx) {
  Instruction *Call = BB->instr(CallIdx);
  Function *Callee = Call->callee();
  if (!Callee || Callee == &F || Callee->empty())
    return false;

  // Split: move everything after the call into a continuation block.
  BasicBlock *Cont = F.createBlockAfter(BB, BB->name() + ".inl.cont");
  while (BB->size() > CallIdx + 1)
    Cont->append(BB->take(CallIdx + 1));
  // Successor phis that named BB now receive control from Cont (the old
  // terminator lives there).
  for (BasicBlock *S : Cont->successors())
    for (Instruction *Phi : S->phis())
      for (unsigned K = 0; K < Phi->numBlocks(); ++K)
        if (Phi->incomingBlock(K) == BB)
          Phi->setBlock(K, Cont);

  // Phase 1: clone callee blocks and instructions (operands unmapped).
  std::map<Value *, Value *> ValueMap;
  std::map<BasicBlock *, BasicBlock *> BlockMap;
  for (unsigned A = 0; A < Callee->numArgs(); ++A)
    ValueMap[Callee->arg(A)] = Call->operand(A);

  BasicBlock *After = Cont;
  std::vector<BasicBlock *> ClonedBlocks;
  for (BasicBlock *CB : *Callee) {
    BasicBlock *NB = F.createBlockAfter(After, Callee->name() + "." +
                                                   CB->name());
    After = NB;
    BlockMap[CB] = NB;
    ClonedBlocks.push_back(NB);
    for (Instruction *I : *CB) {
      auto Clone = cloneInstruction(I, {}, {});
      ValueMap[I] = NB->append(std::move(Clone));
    }
  }

  // Phase 2: remap operands and blocks; rewrite rets.
  std::vector<std::pair<Value *, BasicBlock *>> RetValues;
  Module &Mod = M;
  for (BasicBlock *NB : ClonedBlocks) {
    for (size_t Idx = 0; Idx < NB->size();) {
      Instruction *I = NB->instr(Idx);
      for (unsigned Op = 0; Op < I->numOperands(); ++Op) {
        auto It = ValueMap.find(I->operand(Op));
        if (It != ValueMap.end())
          I->setOperand(Op, It->second);
      }
      for (unsigned K = 0; K < I->numBlocks(); ++K) {
        auto It = BlockMap.find(I->block(K));
        if (It != BlockMap.end())
          I->setBlock(K, It->second);
      }
      if (I->opcode() == Opcode::Ret) {
        Value *RV = I->numOperands() ? I->operand(0) : nullptr;
        NB->erase(Idx);
        auto Br = std::make_unique<Instruction>(Opcode::Br,
                                                Mod.types().voidTy());
        Br->addBlock(Cont);
        NB->append(std::move(Br));
        RetValues.push_back({RV, NB});
        break; // Ret was the terminator.
      }
      ++Idx;
    }
  }

  // Wire the call result.
  if (!Call->type()->isVoid() && !RetValues.empty()) {
    Value *Result = nullptr;
    bool AllSame = true;
    for (auto &[V, RB] : RetValues)
      if (V != RetValues.front().first)
        AllSame = false;
    if (AllSame) {
      Result = RetValues.front().first;
    } else {
      auto Phi = std::make_unique<Instruction>(Opcode::Phi, Call->type());
      for (auto &[V, RB] : RetValues)
        Phi->addIncoming(V, RB);
      Result = Cont->insertAt(0, std::move(Phi));
    }
    F.replaceAllUsesWith(Call, Result);
  }

  // Replace the call with a branch to the cloned entry.
  BB->erase(CallIdx);
  auto Br = std::make_unique<Instruction>(Opcode::Br, Mod.types().voidTy());
  Br->addBlock(BlockMap[Callee->entry()]);
  BB->append(std::move(Br));
  return true;
}

bool concord::transforms::inlineCalls(Module &M, Function &F,
                                      PipelineStats &Stats) {
  bool Changed = false;
  unsigned Guard = 0;
  bool FoundOne = true;
  while (FoundOne && Guard < 10000) {
    FoundOne = false;
    for (BasicBlock *BB : F) {
      for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
        Instruction *I = BB->instr(Idx);
        if (I->opcode() != Opcode::Call)
          continue;
        if (!I->callee() || I->callee() == &F || I->callee()->empty())
          continue;
        if (inlineOneCall(M, F, BB, Idx)) {
          ++Stats.CallsInlined;
          ++Guard;
          Changed = true;
          FoundOne = true;
          break; // Block structure changed; rescan.
        }
      }
      if (FoundOne)
        break;
    }
  }
  return Changed;
}
