//===- cloth_reduce.cpp - parallel_reduce_hetero on a soft body -----------===//
//
// A hanging-cloth step loop built on parallel_reduce_hetero: every
// timestep integrates the springs *and* reduces the total kinetic energy
// across all nodes using the Body's join() - the hierarchical local-
// memory reduction of paper section 3.3. Prints the energy curve as the
// cloth swings and settles.
//
// Build & run:  ./build/examples/cloth_reduce
//
//===----------------------------------------------------------------------===//

#include "concord/Concord.h"

#include <cstdio>

using namespace concord;

struct ClothStep {
  float *Px, *Py;     ///< Positions (2D cloth for brevity).
  float *Vx, *Vy;     ///< Velocities.
  float *Nx, *Ny;     ///< New positions (written).
  int32_t *Pinned;
  int32_t W;
  float Energy;       ///< Reduced.

  void operator()(int I) {
    // Native reference path (unused here; the device path is exercised).
  }
  void join(ClothStep &O) { Energy += O.Energy; }

  static const char *kernelSource() {
    return R"(
      class ClothStep {
      public:
        float* px; float* py;
        float* vx; float* vy;
        float* nx; float* ny;
        int* pinned;
        int w;
        float energy;
        void operator()(int i) {
          if (pinned[i] == 1) {
            nx[i] = px[i]; ny[i] = py[i];
            return;
          }
          int x = i % w;
          int y = i / w;
          float fx = 0.0f;
          float fy = -9.8f;
          // Springs to the 4-neighborhood at rest length 0.05.
          for (int d = 0; d < 4; d++) {
            int jx = x; int jy = y;
            if (d == 0) jx = x - 1;
            if (d == 1) jx = x + 1;
            if (d == 2) jy = y - 1;
            if (d == 3) jy = y + 1;
            if (jx < 0 || jx >= w || jy < 0 || jy >= w)
              continue;
            int j = jy * w + jx;
            float dx = px[j] - px[i];
            float dy = py[j] - py[i];
            float len = sqrtf(dx*dx + dy*dy) + 0.000001f;
            float f = 60.0f * (len - 0.05f) / len;
            fx += f * dx;
            fy += f * dy;
          }
          float nvx = (vx[i] + fx * 0.01f) * 0.99f;
          float nvy = (vy[i] + fy * 0.01f) * 0.99f;
          vx[i] = nvx; vy[i] = nvy;
          nx[i] = px[i] + nvx * 0.01f;
          ny[i] = py[i] + nvy * 0.01f;
          energy += nvx*nvx + nvy*nvy;
        }
        void join(ClothStep& other) { energy += other.energy; }
      };
    )";
  }
  static const char *kernelClassName() { return "ClothStep"; }
};

int main() {
  svm::SharedRegion Region(64 << 20);
  auto Machine = gpusim::MachineConfig::ultrabook();
  Runtime RT(Machine, Region);

  constexpr int W = 48, N = W * W;
  auto AllocF = [&] { return Region.allocArray<float>(N); };
  float *Px = AllocF(), *Py = AllocF(), *Vx = AllocF(), *Vy = AllocF();
  float *Nx = AllocF(), *Ny = AllocF();
  auto *Pinned = Region.allocArray<int32_t>(N);
  for (int I = 0; I < N; ++I) {
    Px[I] = float(I % W) * 0.05f;
    Py[I] = -float(I / W) * 0.05f;
    Vx[I] = Vy[I] = 0;
    Pinned[I] = I < W ? 1 : 0; // Top row pinned.
  }

  auto *Body = Region.create<ClothStep>();
  uint64_t LastBarriers = 0;
  std::printf("step  kinetic-energy   device-ms\n");
  for (int Step = 0; Step < 12; ++Step) {
    *Body = {Px, Py, Vx, Vy, Nx, Ny, Pinned, W, 0.0f};
    LaunchReport Rep = parallel_reduce_hetero(RT, N, *Body, false);
    if (!Rep.Ok) {
      std::fprintf(stderr, "step failed:\n%s\n", Rep.Diagnostics.c_str());
      return 1;
    }
    std::printf("%4d  %14.5f  %9.3f\n", Step, Body->Energy,
                Rep.Sim.Seconds * 1e3);
    LastBarriers = Rep.Sim.Barriers;
    std::swap(Px, Nx);
    std::swap(Py, Ny);
  }
  std::printf("cloth settled; reductions ran as work-group trees with "
              "%llu barriers in the last step\n",
              (unsigned long long)LastBarriers);
  return 0;
}
