//===- quickstart.cpp - Concord in 60 lines --------------------------------===//
//
// The paper's Figure 1 example, end to end: convert an array of Node
// objects into a linked list *on the GPU*, with the pointers written by
// the device being ordinary CPU virtual addresses thanks to software
// shared virtual memory.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "concord/Concord.h"

#include <cstdio>

using namespace concord;

// Host-side data structure. It lives in the shared region, so the GPU can
// chase and store these pointers directly.
struct Node {
  int Value;
  Node *Next;
};

// A Concord Body: operator() is the loop body; kernelSource() carries the
// device version of the same code, compiled by the Concord kernel
// compiler at first launch and cached (the role the Clang-based static
// compiler plays in the paper).
struct LoopBody {
  Node *Nodes;

  void operator()(int I) { Nodes[I].Next = &Nodes[I + 1]; }

  static const char *kernelSource() {
    return R"(
      class Node {
      public:
        int value;
        Node* next;
      };
      class LoopBody {
      public:
        Node* nodes;
        void operator()(int i) {
          nodes[i].next = &(nodes[i+1]);
        }
      };
    )";
  }
  static const char *kernelClassName() { return "LoopBody"; }
};

int main() {
  // One shared region at startup; malloc/new of shared data goes here.
  svm::SharedRegion Region(32 << 20);
  auto Machine = gpusim::MachineConfig::ultrabook();
  Runtime RT(Machine, Region);

  constexpr int N = 100000;
  Node *Nodes = Region.allocArray<Node>(N + 1);
  for (int I = 0; I <= N; ++I)
    Nodes[I] = {I * 10, nullptr};

  LoopBody *Body = Region.create<LoopBody>();
  Body->Nodes = Nodes;

  // Offload to the GPU. The same call with OnCpu=true uses the multicore
  // CPU model instead; either way memory is consistent afterwards.
  LaunchReport Rep = parallel_for_hetero(RT, N, *Body, /*OnCpu=*/false);
  if (!Rep.Ok) {
    std::fprintf(stderr, "launch failed:\n%s\n", Rep.Diagnostics.c_str());
    return 1;
  }

  // Walk the linked list the GPU just built.
  int Count = 0;
  long long Sum = 0;
  for (Node *Cur = &Nodes[0]; Cur; Cur = Cur->Next) {
    Sum += Cur->Value;
    ++Count;
  }
  std::printf("walked %d nodes, value sum %lld\n", Count, Sum);
  std::printf("GPU time %.3f ms, package energy %.3f mJ "
              "(JIT compile %.1f ms, cached afterwards)\n",
              Rep.Sim.Seconds * 1e3, Rep.Sim.Joules * 1e3,
              Rep.CompileSeconds * 1e3);
  return Count == N + 1 ? 0 : 1;
}
