//===- pipeline_async.cpp - Chaining kernels through the scheduler --------===//
//
// Two dependent kernels submitted asynchronously: a producer builds a
// distance field, a consumer thresholds it. The tasks share one array, so
// declaring it written by the first and read by the second makes the
// scheduler serialize them automatically (a RAW hazard edge) — no manual
// synchronization, just futures. A third, independent task runs
// concurrently with the chain to show that only true dependencies
// serialize.
//
// The runtime runs in FootprintPolicy::Verify: every declared access set
// is cross-checked against the statically inferred kernel footprint (an
// under-declaration would be rejected instead of racing), and the
// independent task submits with no declaration at all — its set is
// inferred from the kernel's footprint.
//
// Build & run:  ./build/examples/pipeline_async
//
//===----------------------------------------------------------------------===//

#include "concord/Concord.h"
#include "sched/Scheduler.h"

#include <cstdio>

using namespace concord;

// Stage 1: dist[i] = |i - center| (a toy "distance transform").
struct Distance {
  int *Dist;
  int Center;

  void operator()(int I) {
    int D = I - Center;
    Dist[I] = D < 0 ? -D : D;
  }

  static const char *kernelSource() {
    return R"(
      class Distance {
      public:
        int* dist;
        int center;
        void operator()(int i) {
          int d = i - center;
          dist[i] = d < 0 ? -d : d;
        }
      };
    )";
  }
  static const char *kernelClassName() { return "Distance"; }
};

// Stage 2: mask[i] = dist[i] < radius — reads what stage 1 wrote.
struct Threshold {
  int *Dist;
  int *Mask;
  int Radius;

  void operator()(int I) { Mask[I] = Dist[I] < Radius ? 1 : 0; }

  static const char *kernelSource() {
    return R"(
      class Threshold {
      public:
        int* dist;
        int* mask;
        int radius;
        void operator()(int i) {
          mask[i] = dist[i] < radius ? 1 : 0;
        }
      };
    )";
  }
  static const char *kernelClassName() { return "Threshold"; }
};

int main() {
  svm::SharedRegion Region(64 << 20);
  auto Machine = gpusim::MachineConfig::ultrabook();
  Runtime RT(Machine, Region);
  // Cross-check every declared access set against the kernel's statically
  // inferred footprint; an empty declaration falls back to inference.
  RT.setFootprintPolicy(runtime::FootprintPolicy::Verify);

  constexpr int N = 65536;
  int *Dist = Region.allocArray<int>(N);
  int *Mask = Region.allocArray<int>(N);
  int *Other = Region.allocArray<int>(N);

  auto *Stage1 = Region.create<Distance>();
  Stage1->Dist = Dist;
  Stage1->Center = N / 2;
  auto *Stage2 = Region.create<Threshold>();
  Stage2->Dist = Dist;
  Stage2->Mask = Mask;
  Stage2->Radius = N / 8;
  auto *Indep = Region.create<Distance>();
  Indep->Dist = Other;
  Indep->Center = 0;

  sched::Scheduler Sched(RT);

  // The chain: T2 declares it reads Dist, which T1 writes -> RAW edge,
  // T2 waits for T1. TIndep declares nothing: under Verify the scheduler
  // infers its access set from the kernel footprint (a write to Other,
  // disjoint from the chain), so it still runs concurrently.
  sched::TaskHandle T1 = Sched.submit(
      N, Stage1, sched::AccessSet().writeArray(Dist, N));
  sched::TaskHandle T2 = Sched.submit(
      N, Stage2,
      sched::AccessSet().readArray(Dist, N).writeArray(Mask, N));
  sched::TaskHandle TIndep = Sched.submit(N, Indep, sched::AccessSet());

  // wait() is the future's join: after it, the task's memory effects are
  // visible and its report (timing, hybrid split) is final.
  const sched::TaskResult &R1 = T1.wait();
  const sched::TaskResult &R2 = T2.wait();
  const sched::TaskResult &RI = TIndep.wait();
  if (!R1.Ok || !R2.Ok || !RI.Ok) {
    std::fprintf(stderr, "task failed: %s%s%s\n", R1.Error.c_str(),
                 R2.Error.c_str(), RI.Error.c_str());
    return 1;
  }

  int Inside = 0;
  for (int I = 0; I < N; ++I)
    Inside += Mask[I];
  std::printf("mask has %d items inside radius %d (expected %d)\n", Inside,
              N / 8, N / 4 - 1);

  auto Ms = [](double S) { return S * 1e3; };
  std::printf("stage1: queue %.2f ms, exec %.2f ms%s\n",
              Ms(R1.Timing.QueueSeconds), Ms(R1.Timing.ExecuteSeconds),
              R1.Report.Hybrid ? " (hybrid split)" : "");
  std::printf("stage2: queue %.2f ms, exec %.2f ms%s\n",
              Ms(R2.Timing.QueueSeconds), Ms(R2.Timing.ExecuteSeconds),
              R2.Report.Hybrid ? " (hybrid split)" : "");
  std::printf("chain serialized: %s; independent task overlapped: %s\n",
              R1.EndSeq < R2.StartSeq ? "yes" : "NO (bug)",
              RI.StartSeq < R2.EndSeq ? "yes" : "no");

  sched::Scheduler::Stats St = Sched.stats();
  std::printf("%llu tasks, %llu hazard edges, %llu hybrid launches, "
              "%llu inferred access sets\n",
              (unsigned long long)St.Submitted,
              (unsigned long long)St.HazardEdges,
              (unsigned long long)St.HybridLaunches,
              (unsigned long long)St.InferredSets);
  return Inside == N / 4 - 1 ? 0 : 1;
}
