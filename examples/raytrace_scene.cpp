//===- raytrace_scene.cpp - Virtual dispatch on the GPU, rendered to PPM --===//
//
// A small Whitted-style raytracer whose scene objects are C++ classes
// with *virtual* intersect/normal methods, dispatched on the GPU through
// vtables materialized in the shared region (paper section 3.2). Writes
// the rendered image to raytrace_scene.ppm.
//
// Build & run:  ./build/examples/raytrace_scene
//
//===----------------------------------------------------------------------===//

#include "concord/Concord.h"

#include <cmath>
#include <cstdio>

using namespace concord;

/// Host mirror of the kernel's Shape layout: vptr, center, radius/normal,
/// material. install_vptrs() fills VPtr with the shared-region vtable.
struct Shape {
  uint64_t VPtr;
  float Cx, Cy, Cz;
  float P0, P1, P2;
  int32_t Material;
};

struct RenderBody {
  Shape **Objects;
  float *Image;
  int32_t NumObjects;
  int32_t Width;

  void operator()(int) {}

  static const char *kernelSource() {
    return R"(
      class Shape {
      public:
        float cx; float cy; float cz;
        float p0; float p1; float p2;
        int material;
        virtual float intersect(float ox, float oy, float oz,
                                float dx, float dy, float dz) {
          return -1.0f;
        }
      };
      class Sphere : public Shape {
      public:
        virtual float intersect(float ox, float oy, float oz,
                                float dx, float dy, float dz) {
          float mx = cx - ox; float my = cy - oy; float mz = cz - oz;
          float b = mx*dx + my*dy + mz*dz;
          float c = mx*mx + my*my + mz*mz - p0*p0;
          float disc = b*b - c;
          if (disc < 0.0f) return -1.0f;
          return b - sqrtf(disc);
        }
      };
      class Floor : public Shape {
      public:
        virtual float intersect(float ox, float oy, float oz,
                                float dx, float dy, float dz) {
          if (fabsf(dy) < 0.0001f) return -1.0f;
          return (cy - oy) / dy;
        }
      };
      class RenderBody {
      public:
        Shape** objects;
        float* image;
        int numObjects;
        int width;
        void operator()(int i) {
          int px = i % width;
          int py = i / width;
          float dx = ((float)px / (float)width - 0.5f) * 1.6f;
          float dy = ((float)py / (float)width - 0.3f) * 1.6f;
          float dz = 1.0f;
          float inv = rsqrtf(dx*dx + dy*dy + dz*dz);
          dx *= inv; dy *= inv; dz *= inv;
          float best = 1.0e9f;
          Shape* hit = nullptr;
          for (int o = 0; o < numObjects; o++) {
            float t = objects[o]->intersect(0.0f, 1.0f, -4.0f, dx, dy, dz);
            if (t > 0.001f && t < best) { best = t; hit = objects[o]; }
          }
          float shade = 0.1f;
          if (hit != nullptr)
            shade = 0.2f + 0.8f / (1.0f + best * 0.2f);
          image[i] = shade;
        }
      };
    )";
  }
  static const char *kernelClassName() { return "RenderBody"; }
};

int main() {
  svm::SharedRegion Region(64 << 20);
  auto Machine = gpusim::MachineConfig::ultrabook();
  Runtime RT(Machine, Region);
  KernelSpec Spec{RenderBody::kernelSource(), RenderBody::kernelClassName()};

  constexpr int W = 200, H = 150, NumShapes = 25;
  auto *Objects = Region.allocArray<Shape *>(NumShapes);
  for (int I = 0; I < NumShapes; ++I) {
    auto *S = Region.create<Shape>();
    if (I == 0) {
      *S = {0, 0.f, -0.5f, 0.f, 0.f, 0.f, 0.f, 0};
      RT.installVPtrs(Spec, S, "Floor");
    } else {
      float A = float(I) * 0.7f;
      *S = {0, std::cos(A) * 2.0f, 0.2f + 0.1f * float(I % 4),
            2.0f + std::sin(A) * 2.0f, 0.3f, 0, 0, 0};
      RT.installVPtrs(Spec, S, "Sphere");
    }
    Objects[I] = S;
  }

  auto *Image = Region.allocArray<float>(W * H);
  auto *Body = Region.create<RenderBody>();
  *Body = {Objects, Image, NumShapes, W};

  LaunchReport Rep = parallel_for_hetero(RT, W * H, *Body, /*OnCpu=*/false);
  if (!Rep.Ok) {
    std::fprintf(stderr, "render failed:\n%s\n", Rep.Diagnostics.c_str());
    return 1;
  }
  std::printf("rendered %dx%d on the simulated GPU: %.2f ms, %.2f mJ, "
              "%llu virtual dispatches inlined as test chains\n",
              W, H, Rep.Sim.Seconds * 1e3, Rep.Sim.Joules * 1e3,
              (unsigned long long)Rep.OptStats.VCallsDevirtualized);

  FILE *F = std::fopen("raytrace_scene.ppm", "w");
  if (!F)
    return 1;
  std::fprintf(F, "P2\n%d %d\n255\n", W, H);
  for (int Y = H - 1; Y >= 0; --Y) {
    for (int X = 0; X < W; ++X) {
      float V = Image[Y * W + X];
      int G = int(std::fmin(1.0f, std::fmax(0.0f, V)) * 255.0f);
      std::fprintf(F, "%d ", G);
    }
    std::fprintf(F, "\n");
  }
  std::fclose(F);
  std::printf("wrote raytrace_scene.ppm\n");
  return 0;
}
