//===- graph_analytics.cpp - Irregular graph processing on the GPU --------===//
//
// Single-source shortest paths over a pointer-free CSR graph, the
// workload family the paper draws from Galois. Demonstrates:
//   * iterative offloading with a shared `changed` flag the host reads
//     between launches (memory consistency at launch boundaries),
//   * comparing the same kernel on the CPU and GPU machine models.
//
// Build & run:  ./build/examples/graph_analytics
//
//===----------------------------------------------------------------------===//

#include "concord/Concord.h"
#include "workloads/GraphGen.h"

#include <cstdio>
#include <vector>

using namespace concord;

struct SsspBody {
  int *RowStart;
  int *Dest;
  int *Weight;
  int *Dist;
  int *Changed;

  void operator()(int U) {
    if (Dist[U] == 1073741823)
      return;
    for (int E = RowStart[U]; E < RowStart[U + 1]; ++E) {
      int V = Dest[E];
      int ND = Dist[U] + Weight[E];
      if (ND < Dist[V]) {
        Dist[V] = ND;
        Changed[0] = 1;
      }
    }
  }

  static const char *kernelSource() {
    return R"(
      class SsspBody {
      public:
        int* rowStart;
        int* dest;
        int* weight;
        int* dist;
        int* changed;
        void operator()(int u) {
          int du = dist[u];
          if (du == 1073741823)
            return;
          int end = rowStart[u + 1];
          for (int e = rowStart[u]; e < end; e++) {
            int v = dest[e];
            int nd = du + weight[e];
            if (nd < dist[v]) {
              dist[v] = nd;
              changed[0] = 1;
            }
          }
        }
      };
    )";
  }
  static const char *kernelClassName() { return "SsspBody"; }
};

int main() {
  svm::SharedRegion Region(64 << 20);
  auto Machine = gpusim::MachineConfig::desktop();
  Runtime RT(Machine, Region);

  workloads::CsrGraph G = workloads::makeRoadNetwork(/*Side=*/72);
  std::printf("road network: %d nodes, %d directed edges\n", G.NumNodes,
              G.NumEdges);

  auto *RowStart = Region.allocArray<int>(size_t(G.NumNodes) + 1);
  auto *Dest = Region.allocArray<int>(size_t(G.NumEdges));
  auto *Weight = Region.allocArray<int>(size_t(G.NumEdges));
  auto *Dist = Region.allocArray<int>(size_t(G.NumNodes));
  auto *Changed = Region.allocArray<int>(1);
  std::copy(G.RowStart.begin(), G.RowStart.end(), RowStart);
  std::copy(G.Dest.begin(), G.Dest.end(), Dest);
  std::copy(G.Weight.begin(), G.Weight.end(), Weight);

  auto *Body = Region.create<SsspBody>();
  *Body = {RowStart, Dest, Weight, Dist, Changed};

  for (bool OnCpu : {true, false}) {
    std::fill(Dist, Dist + G.NumNodes, 1073741823);
    Dist[0] = 0;
    double Seconds = 0, Joules = 0;
    unsigned Rounds = 0;
    while (true) {
      Changed[0] = 0;
      LaunchReport Rep = parallel_for_hetero(RT, G.NumNodes, *Body, OnCpu);
      if (!Rep.Ok) {
        std::fprintf(stderr, "launch failed: %s\n", Rep.Diagnostics.c_str());
        return 1;
      }
      Seconds += Rep.Sim.Seconds;
      Joules += Rep.Sim.Joules;
      ++Rounds;
      if (!Changed[0])
        break;
    }
    long long Reachable = 0, Total = 0;
    for (int U = 0; U < G.NumNodes; ++U)
      if (Dist[U] != 1073741823) {
        ++Reachable;
        Total += Dist[U];
      }
    std::printf("%-4s: %u rounds, %.3f ms, %.3f mJ | reachable %lld, "
                "avg distance %.1f\n",
                OnCpu ? "CPU" : "GPU", Rounds, Seconds * 1e3, Joules * 1e3,
                Reachable, double(Total) / double(Reachable));
  }
  return 0;
}
