# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_svm[1]_include.cmake")
include("/root/repo/build/tests/test_cir[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_endtoend[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostics[1]_include.cmake")
