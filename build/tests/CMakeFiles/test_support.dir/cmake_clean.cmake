file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/SupportTests.cpp.o"
  "CMakeFiles/test_support.dir/SupportTests.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
