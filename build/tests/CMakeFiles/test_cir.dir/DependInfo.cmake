
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CirTests.cpp" "tests/CMakeFiles/test_cir.dir/CirTests.cpp.o" "gcc" "tests/CMakeFiles/test_cir.dir/CirTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/concord_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/concord_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/concord_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/concord_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/concord_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/concord_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/concord_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/concord_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/concord_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
