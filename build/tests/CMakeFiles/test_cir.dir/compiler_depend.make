# Empty compiler generated dependencies file for test_cir.
# This may be replaced when dependencies are built.
