file(REMOVE_RECURSE
  "CMakeFiles/test_cir.dir/CirTests.cpp.o"
  "CMakeFiles/test_cir.dir/CirTests.cpp.o.d"
  "test_cir"
  "test_cir.pdb"
  "test_cir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
