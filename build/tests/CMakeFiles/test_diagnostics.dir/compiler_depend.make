# Empty compiler generated dependencies file for test_diagnostics.
# This may be replaced when dependencies are built.
