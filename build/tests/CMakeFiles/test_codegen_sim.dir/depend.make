# Empty dependencies file for test_codegen_sim.
# This may be replaced when dependencies are built.
