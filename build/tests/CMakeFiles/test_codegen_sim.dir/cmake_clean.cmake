file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_sim.dir/CodegenSimTests.cpp.o"
  "CMakeFiles/test_codegen_sim.dir/CodegenSimTests.cpp.o.d"
  "test_codegen_sim"
  "test_codegen_sim.pdb"
  "test_codegen_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
