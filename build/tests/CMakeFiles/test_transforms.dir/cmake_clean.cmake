file(REMOVE_RECURSE
  "CMakeFiles/test_transforms.dir/TransformTests.cpp.o"
  "CMakeFiles/test_transforms.dir/TransformTests.cpp.o.d"
  "test_transforms"
  "test_transforms.pdb"
  "test_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
