file(REMOVE_RECURSE
  "CMakeFiles/test_endtoend.dir/EndToEndTests.cpp.o"
  "CMakeFiles/test_endtoend.dir/EndToEndTests.cpp.o.d"
  "test_endtoend"
  "test_endtoend.pdb"
  "test_endtoend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
