# Empty dependencies file for test_endtoend.
# This may be replaced when dependencies are built.
