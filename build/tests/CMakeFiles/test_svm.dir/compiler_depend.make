# Empty compiler generated dependencies file for test_svm.
# This may be replaced when dependencies are built.
