file(REMOVE_RECURSE
  "CMakeFiles/test_svm.dir/SvmTests.cpp.o"
  "CMakeFiles/test_svm.dir/SvmTests.cpp.o.d"
  "test_svm"
  "test_svm.pdb"
  "test_svm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
