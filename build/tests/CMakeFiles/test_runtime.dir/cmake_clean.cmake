file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/RuntimeTests.cpp.o"
  "CMakeFiles/test_runtime.dir/RuntimeTests.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
