# Empty dependencies file for fig8_ultrabook_energy.
# This may be replaced when dependencies are built.
