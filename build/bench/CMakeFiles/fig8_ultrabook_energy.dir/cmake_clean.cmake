file(REMOVE_RECURSE
  "CMakeFiles/fig8_ultrabook_energy.dir/fig8_ultrabook_energy.cpp.o"
  "CMakeFiles/fig8_ultrabook_energy.dir/fig8_ultrabook_energy.cpp.o.d"
  "fig8_ultrabook_energy"
  "fig8_ultrabook_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ultrabook_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
