# Empty compiler generated dependencies file for fig6_ir_stats.
# This may be replaced when dependencies are built.
