file(REMOVE_RECURSE
  "CMakeFiles/fig6_ir_stats.dir/fig6_ir_stats.cpp.o"
  "CMakeFiles/fig6_ir_stats.dir/fig6_ir_stats.cpp.o.d"
  "fig6_ir_stats"
  "fig6_ir_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ir_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
