file(REMOVE_RECURSE
  "CMakeFiles/fig9_desktop_speedup.dir/fig9_desktop_speedup.cpp.o"
  "CMakeFiles/fig9_desktop_speedup.dir/fig9_desktop_speedup.cpp.o.d"
  "fig9_desktop_speedup"
  "fig9_desktop_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_desktop_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
