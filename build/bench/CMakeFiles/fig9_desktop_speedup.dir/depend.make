# Empty dependencies file for fig9_desktop_speedup.
# This may be replaced when dependencies are built.
