# Empty compiler generated dependencies file for ablation_l3opt.
# This may be replaced when dependencies are built.
