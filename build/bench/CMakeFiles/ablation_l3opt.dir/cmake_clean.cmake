file(REMOVE_RECURSE
  "CMakeFiles/ablation_l3opt.dir/ablation_l3opt.cpp.o"
  "CMakeFiles/ablation_l3opt.dir/ablation_l3opt.cpp.o.d"
  "ablation_l3opt"
  "ablation_l3opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l3opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
