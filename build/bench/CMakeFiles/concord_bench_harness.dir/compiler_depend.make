# Empty compiler generated dependencies file for concord_bench_harness.
# This may be replaced when dependencies are built.
