file(REMOVE_RECURSE
  "CMakeFiles/concord_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/concord_bench_harness.dir/Harness.cpp.o.d"
  "libconcord_bench_harness.a"
  "libconcord_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
