file(REMOVE_RECURSE
  "libconcord_bench_harness.a"
)
