file(REMOVE_RECURSE
  "CMakeFiles/ablation_ptropt.dir/ablation_ptropt.cpp.o"
  "CMakeFiles/ablation_ptropt.dir/ablation_ptropt.cpp.o.d"
  "ablation_ptropt"
  "ablation_ptropt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ptropt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
