# Empty dependencies file for ablation_ptropt.
# This may be replaced when dependencies are built.
