file(REMOVE_RECURSE
  "CMakeFiles/sec54_svm_overhead.dir/sec54_svm_overhead.cpp.o"
  "CMakeFiles/sec54_svm_overhead.dir/sec54_svm_overhead.cpp.o.d"
  "sec54_svm_overhead"
  "sec54_svm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_svm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
