# Empty dependencies file for sec54_svm_overhead.
# This may be replaced when dependencies are built.
