file(REMOVE_RECURSE
  "CMakeFiles/fig7_ultrabook_speedup.dir/fig7_ultrabook_speedup.cpp.o"
  "CMakeFiles/fig7_ultrabook_speedup.dir/fig7_ultrabook_speedup.cpp.o.d"
  "fig7_ultrabook_speedup"
  "fig7_ultrabook_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ultrabook_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
