# Empty dependencies file for fig7_ultrabook_speedup.
# This may be replaced when dependencies are built.
