# Empty dependencies file for table1_workloads.
# This may be replaced when dependencies are built.
