# Empty compiler generated dependencies file for fig10_desktop_energy.
# This may be replaced when dependencies are built.
