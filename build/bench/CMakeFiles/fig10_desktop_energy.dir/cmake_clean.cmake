file(REMOVE_RECURSE
  "CMakeFiles/fig10_desktop_energy.dir/fig10_desktop_energy.cpp.o"
  "CMakeFiles/fig10_desktop_energy.dir/fig10_desktop_energy.cpp.o.d"
  "fig10_desktop_energy"
  "fig10_desktop_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_desktop_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
