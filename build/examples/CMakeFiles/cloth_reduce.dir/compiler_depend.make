# Empty compiler generated dependencies file for cloth_reduce.
# This may be replaced when dependencies are built.
