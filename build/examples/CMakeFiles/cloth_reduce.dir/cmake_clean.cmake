file(REMOVE_RECURSE
  "CMakeFiles/cloth_reduce.dir/cloth_reduce.cpp.o"
  "CMakeFiles/cloth_reduce.dir/cloth_reduce.cpp.o.d"
  "cloth_reduce"
  "cloth_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloth_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
