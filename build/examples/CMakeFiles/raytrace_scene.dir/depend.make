# Empty dependencies file for raytrace_scene.
# This may be replaced when dependencies are built.
