file(REMOVE_RECURSE
  "CMakeFiles/raytrace_scene.dir/raytrace_scene.cpp.o"
  "CMakeFiles/raytrace_scene.dir/raytrace_scene.cpp.o.d"
  "raytrace_scene"
  "raytrace_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytrace_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
