file(REMOVE_RECURSE
  "libconcord_analysis.a"
)
