file(REMOVE_RECURSE
  "CMakeFiles/concord_analysis.dir/CFG.cpp.o"
  "CMakeFiles/concord_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/concord_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/concord_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/concord_analysis.dir/ClassHierarchy.cpp.o"
  "CMakeFiles/concord_analysis.dir/ClassHierarchy.cpp.o.d"
  "CMakeFiles/concord_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/concord_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/concord_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/concord_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/concord_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/concord_analysis.dir/LoopInfo.cpp.o.d"
  "libconcord_analysis.a"
  "libconcord_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
