
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/CallGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/ClassHierarchy.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/ClassHierarchy.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/ClassHierarchy.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/concord_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/concord_analysis.dir/LoopInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cir/CMakeFiles/concord_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
