# Empty dependencies file for concord_analysis.
# This may be replaced when dependencies are built.
