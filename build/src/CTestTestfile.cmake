# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("svm")
subdirs("cir")
subdirs("analysis")
subdirs("frontend")
subdirs("transforms")
subdirs("codegen")
subdirs("gpusim")
subdirs("runtime")
subdirs("concord")
subdirs("workloads")
