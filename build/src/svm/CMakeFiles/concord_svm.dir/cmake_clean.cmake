file(REMOVE_RECURSE
  "CMakeFiles/concord_svm.dir/BindingTable.cpp.o"
  "CMakeFiles/concord_svm.dir/BindingTable.cpp.o.d"
  "CMakeFiles/concord_svm.dir/SharedRegion.cpp.o"
  "CMakeFiles/concord_svm.dir/SharedRegion.cpp.o.d"
  "libconcord_svm.a"
  "libconcord_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
