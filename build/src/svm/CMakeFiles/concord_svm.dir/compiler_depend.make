# Empty compiler generated dependencies file for concord_svm.
# This may be replaced when dependencies are built.
