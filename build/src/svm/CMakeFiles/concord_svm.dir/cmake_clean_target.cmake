file(REMOVE_RECURSE
  "libconcord_svm.a"
)
