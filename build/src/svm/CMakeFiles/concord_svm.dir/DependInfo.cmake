
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/BindingTable.cpp" "src/svm/CMakeFiles/concord_svm.dir/BindingTable.cpp.o" "gcc" "src/svm/CMakeFiles/concord_svm.dir/BindingTable.cpp.o.d"
  "/root/repo/src/svm/SharedRegion.cpp" "src/svm/CMakeFiles/concord_svm.dir/SharedRegion.cpp.o" "gcc" "src/svm/CMakeFiles/concord_svm.dir/SharedRegion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
