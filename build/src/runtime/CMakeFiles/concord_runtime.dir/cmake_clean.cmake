file(REMOVE_RECURSE
  "CMakeFiles/concord_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/concord_runtime.dir/Runtime.cpp.o.d"
  "libconcord_runtime.a"
  "libconcord_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
