# Empty dependencies file for concord_runtime.
# This may be replaced when dependencies are built.
