file(REMOVE_RECURSE
  "libconcord_runtime.a"
)
