file(REMOVE_RECURSE
  "CMakeFiles/concord_workloads.dir/BarnesHut.cpp.o"
  "CMakeFiles/concord_workloads.dir/BarnesHut.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/ClothPhysics.cpp.o"
  "CMakeFiles/concord_workloads.dir/ClothPhysics.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/FaceDetect.cpp.o"
  "CMakeFiles/concord_workloads.dir/FaceDetect.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/GraphGen.cpp.o"
  "CMakeFiles/concord_workloads.dir/GraphGen.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/GraphWorkloads.cpp.o"
  "CMakeFiles/concord_workloads.dir/GraphWorkloads.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/Raytracer.cpp.o"
  "CMakeFiles/concord_workloads.dir/Raytracer.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/SearchWorkloads.cpp.o"
  "CMakeFiles/concord_workloads.dir/SearchWorkloads.cpp.o.d"
  "CMakeFiles/concord_workloads.dir/Workload.cpp.o"
  "CMakeFiles/concord_workloads.dir/Workload.cpp.o.d"
  "libconcord_workloads.a"
  "libconcord_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
