# Empty compiler generated dependencies file for concord_workloads.
# This may be replaced when dependencies are built.
