
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BarnesHut.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/BarnesHut.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/BarnesHut.cpp.o.d"
  "/root/repo/src/workloads/ClothPhysics.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/ClothPhysics.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/ClothPhysics.cpp.o.d"
  "/root/repo/src/workloads/FaceDetect.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/FaceDetect.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/FaceDetect.cpp.o.d"
  "/root/repo/src/workloads/GraphGen.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/GraphGen.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/GraphGen.cpp.o.d"
  "/root/repo/src/workloads/GraphWorkloads.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/GraphWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/GraphWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Raytracer.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/Raytracer.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/Raytracer.cpp.o.d"
  "/root/repo/src/workloads/SearchWorkloads.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/SearchWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/SearchWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/concord_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/concord_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/concord_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/concord_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/concord_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/concord_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/concord_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/concord_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/concord_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/concord_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
