file(REMOVE_RECURSE
  "libconcord_workloads.a"
)
