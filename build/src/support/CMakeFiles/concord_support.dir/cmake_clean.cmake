file(REMOVE_RECURSE
  "CMakeFiles/concord_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/concord_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/concord_support.dir/StringUtils.cpp.o"
  "CMakeFiles/concord_support.dir/StringUtils.cpp.o.d"
  "libconcord_support.a"
  "libconcord_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
