# Empty compiler generated dependencies file for concord_support.
# This may be replaced when dependencies are built.
