file(REMOVE_RECURSE
  "libconcord_support.a"
)
