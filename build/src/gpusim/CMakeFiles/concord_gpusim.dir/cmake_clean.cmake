file(REMOVE_RECURSE
  "CMakeFiles/concord_gpusim.dir/CacheModel.cpp.o"
  "CMakeFiles/concord_gpusim.dir/CacheModel.cpp.o.d"
  "CMakeFiles/concord_gpusim.dir/MachineConfig.cpp.o"
  "CMakeFiles/concord_gpusim.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/concord_gpusim.dir/Simulator.cpp.o"
  "CMakeFiles/concord_gpusim.dir/Simulator.cpp.o.d"
  "libconcord_gpusim.a"
  "libconcord_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
