# Empty dependencies file for concord_gpusim.
# This may be replaced when dependencies are built.
