file(REMOVE_RECURSE
  "libconcord_gpusim.a"
)
