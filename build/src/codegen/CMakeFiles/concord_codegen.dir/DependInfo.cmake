
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/CodeGen.cpp" "src/codegen/CMakeFiles/concord_codegen.dir/CodeGen.cpp.o" "gcc" "src/codegen/CMakeFiles/concord_codegen.dir/CodeGen.cpp.o.d"
  "/root/repo/src/codegen/OpenCLEmitter.cpp" "src/codegen/CMakeFiles/concord_codegen.dir/OpenCLEmitter.cpp.o" "gcc" "src/codegen/CMakeFiles/concord_codegen.dir/OpenCLEmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/concord_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/concord_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
