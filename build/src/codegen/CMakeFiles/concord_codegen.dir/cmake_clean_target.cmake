file(REMOVE_RECURSE
  "libconcord_codegen.a"
)
