file(REMOVE_RECURSE
  "CMakeFiles/concord_codegen.dir/CodeGen.cpp.o"
  "CMakeFiles/concord_codegen.dir/CodeGen.cpp.o.d"
  "CMakeFiles/concord_codegen.dir/OpenCLEmitter.cpp.o"
  "CMakeFiles/concord_codegen.dir/OpenCLEmitter.cpp.o.d"
  "libconcord_codegen.a"
  "libconcord_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
