# Empty compiler generated dependencies file for concord_codegen.
# This may be replaced when dependencies are built.
