file(REMOVE_RECURSE
  "CMakeFiles/concord_transforms.dir/BodyFieldPromotion.cpp.o"
  "CMakeFiles/concord_transforms.dir/BodyFieldPromotion.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/Devirtualize.cpp.o"
  "CMakeFiles/concord_transforms.dir/Devirtualize.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/Inliner.cpp.o"
  "CMakeFiles/concord_transforms.dir/Inliner.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/L3Opt.cpp.o"
  "CMakeFiles/concord_transforms.dir/L3Opt.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/LoopUnroll.cpp.o"
  "CMakeFiles/concord_transforms.dir/LoopUnroll.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/Pipeline.cpp.o"
  "CMakeFiles/concord_transforms.dir/Pipeline.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/ReduceKernel.cpp.o"
  "CMakeFiles/concord_transforms.dir/ReduceKernel.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/ScalarOpts.cpp.o"
  "CMakeFiles/concord_transforms.dir/ScalarOpts.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/SvmLowering.cpp.o"
  "CMakeFiles/concord_transforms.dir/SvmLowering.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/TailRecursionElim.cpp.o"
  "CMakeFiles/concord_transforms.dir/TailRecursionElim.cpp.o.d"
  "CMakeFiles/concord_transforms.dir/Utils.cpp.o"
  "CMakeFiles/concord_transforms.dir/Utils.cpp.o.d"
  "libconcord_transforms.a"
  "libconcord_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
