# Empty dependencies file for concord_transforms.
# This may be replaced when dependencies are built.
