
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/BodyFieldPromotion.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/BodyFieldPromotion.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/BodyFieldPromotion.cpp.o.d"
  "/root/repo/src/transforms/Devirtualize.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/Devirtualize.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/Devirtualize.cpp.o.d"
  "/root/repo/src/transforms/Inliner.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/Inliner.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/Inliner.cpp.o.d"
  "/root/repo/src/transforms/L3Opt.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/L3Opt.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/L3Opt.cpp.o.d"
  "/root/repo/src/transforms/LoopUnroll.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/LoopUnroll.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/LoopUnroll.cpp.o.d"
  "/root/repo/src/transforms/Pipeline.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/Pipeline.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/Pipeline.cpp.o.d"
  "/root/repo/src/transforms/ReduceKernel.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/ReduceKernel.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/ReduceKernel.cpp.o.d"
  "/root/repo/src/transforms/ScalarOpts.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/ScalarOpts.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/ScalarOpts.cpp.o.d"
  "/root/repo/src/transforms/SvmLowering.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/SvmLowering.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/SvmLowering.cpp.o.d"
  "/root/repo/src/transforms/TailRecursionElim.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/TailRecursionElim.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/TailRecursionElim.cpp.o.d"
  "/root/repo/src/transforms/Utils.cpp" "src/transforms/CMakeFiles/concord_transforms.dir/Utils.cpp.o" "gcc" "src/transforms/CMakeFiles/concord_transforms.dir/Utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/concord_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/concord_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/concord_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
