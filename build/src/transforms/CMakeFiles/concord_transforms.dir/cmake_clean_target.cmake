file(REMOVE_RECURSE
  "libconcord_transforms.a"
)
