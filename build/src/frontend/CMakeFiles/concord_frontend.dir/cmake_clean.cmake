file(REMOVE_RECURSE
  "CMakeFiles/concord_frontend.dir/IRGen.cpp.o"
  "CMakeFiles/concord_frontend.dir/IRGen.cpp.o.d"
  "CMakeFiles/concord_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/concord_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/concord_frontend.dir/Parser.cpp.o"
  "CMakeFiles/concord_frontend.dir/Parser.cpp.o.d"
  "libconcord_frontend.a"
  "libconcord_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
