file(REMOVE_RECURSE
  "libconcord_frontend.a"
)
