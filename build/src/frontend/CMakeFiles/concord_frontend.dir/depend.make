# Empty dependencies file for concord_frontend.
# This may be replaced when dependencies are built.
