# Empty compiler generated dependencies file for concord_cir.
# This may be replaced when dependencies are built.
