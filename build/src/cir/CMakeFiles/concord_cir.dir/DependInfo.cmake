
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cir/Function.cpp" "src/cir/CMakeFiles/concord_cir.dir/Function.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Function.cpp.o.d"
  "/root/repo/src/cir/Instruction.cpp" "src/cir/CMakeFiles/concord_cir.dir/Instruction.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Instruction.cpp.o.d"
  "/root/repo/src/cir/Module.cpp" "src/cir/CMakeFiles/concord_cir.dir/Module.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Module.cpp.o.d"
  "/root/repo/src/cir/Printer.cpp" "src/cir/CMakeFiles/concord_cir.dir/Printer.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Printer.cpp.o.d"
  "/root/repo/src/cir/Type.cpp" "src/cir/CMakeFiles/concord_cir.dir/Type.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Type.cpp.o.d"
  "/root/repo/src/cir/Verifier.cpp" "src/cir/CMakeFiles/concord_cir.dir/Verifier.cpp.o" "gcc" "src/cir/CMakeFiles/concord_cir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/concord_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
