file(REMOVE_RECURSE
  "CMakeFiles/concord_cir.dir/Function.cpp.o"
  "CMakeFiles/concord_cir.dir/Function.cpp.o.d"
  "CMakeFiles/concord_cir.dir/Instruction.cpp.o"
  "CMakeFiles/concord_cir.dir/Instruction.cpp.o.d"
  "CMakeFiles/concord_cir.dir/Module.cpp.o"
  "CMakeFiles/concord_cir.dir/Module.cpp.o.d"
  "CMakeFiles/concord_cir.dir/Printer.cpp.o"
  "CMakeFiles/concord_cir.dir/Printer.cpp.o.d"
  "CMakeFiles/concord_cir.dir/Type.cpp.o"
  "CMakeFiles/concord_cir.dir/Type.cpp.o.d"
  "CMakeFiles/concord_cir.dir/Verifier.cpp.o"
  "CMakeFiles/concord_cir.dir/Verifier.cpp.o.d"
  "libconcord_cir.a"
  "libconcord_cir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concord_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
