file(REMOVE_RECURSE
  "libconcord_cir.a"
)
